"""Structure-of-arrays (SoA) packing for per-shard agent state.

The interpreted runtime stores agent state as one ``dict`` per agent object
(:class:`~repro.core.agent.Agent`).  The columnar plan kernels
(:mod:`repro.brasil.kernels`) instead want each numeric field of a class as
one contiguous NumPy column so a whole query or update phase becomes a
handful of array operations.  :class:`AgentTable` is the bridge: it packs
one class's agents — in the same canonical order the
:class:`~repro.spatial.columnar.PointSet` snapshot harvested by
``Worker.distribute`` uses — into ``float64`` columns, and writes dirty
columns back to the owning objects afterwards.

Bit-identity is the contract, so packing is conservative:

* ``float`` values pass through exactly (they already are IEEE doubles);
* ``bool`` packs as 0.0/1.0 and ``int`` packs as its exact ``float64``
  value **only** when the round-trip is lossless (|v| ≤ 2**53 in effect);
* anything else — strings, tuples, ``None``, or an integer a double cannot
  represent (the "far-origin position" overflow case) — raises
  :class:`UnpackableValueError` so the caller falls back to the
  interpreted per-object path instead of silently corrupting state.

Writeback is keyed by the *object references* captured at pack time, not by
row position in some later list, so agents born or killed between pack and
writeback cannot shift rows: new agents are simply not in the table, and
rows whose agents left the world write to an unreferenced ``_state`` dict,
which is harmless.  A cell whose packed value never changed writes the
*original* Python object back (same type, same NaN payload), making a
pack → writeback round-trip bit-identical to not packing at all.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np


class UnpackableValueError(ValueError):
    """A field value cannot be packed into a ``float64`` column losslessly."""


def pack_value(value) -> float:
    """Return ``value`` as an exact ``float64``, or raise.

    Accepts floats (verbatim, NaN/inf included), bools (0.0/1.0) and ints
    that survive an exact ``int → float → int`` round trip.  Everything
    else raises :class:`UnpackableValueError`.
    """
    if type(value) is float:
        return value
    if type(value) is bool:
        return 1.0 if value else 0.0
    if type(value) is int:
        try:
            as_float = float(value)
        except OverflowError as exc:
            raise UnpackableValueError(f"int too large for float64: {value!r}") from exc
        if math.isinf(as_float) or int(as_float) != value:
            raise UnpackableValueError(
                f"int does not round-trip through float64: {value!r}"
            )
        return as_float
    raise UnpackableValueError(f"cannot pack {type(value).__name__} value {value!r}")


def pack_column(values: Iterable) -> np.ndarray:
    """Pack a sequence of field values into one ``float64`` column."""
    return np.array([pack_value(value) for value in values], dtype=np.float64)


def _cells_equal(a: float, b: float) -> bool:
    """Exact cell equality: same double, NaN equal to NaN, -0.0 != 0.0."""
    if math.isnan(a):
        return math.isnan(b)
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


class AgentTable:
    """Columnar (structure-of-arrays) view over one class's agents.

    ``agents`` must all be instances of the same agent class and should be
    supplied in canonical order (``sorted(key=agent_sort_key)``) so rows
    line up with the worker's ``PointSet`` snapshot.  ``field_names``
    defaults to every declared state field of the class, in declaration
    order — the same order ``position()`` uses for spatial fields.
    """

    def __init__(self, agents: Sequence, field_names: Sequence[str] | None = None):
        self.agents: List = list(agents)
        if field_names is None:
            if self.agents:
                field_names = list(type(self.agents[0])._state_fields)
            else:
                field_names = []
        self.field_names: List[str] = list(field_names)
        self._row_of: Dict[int, int] = {id(a): i for i, a in enumerate(self.agents)}
        self._columns: Dict[str, np.ndarray] = {}
        self._originals: Dict[str, list] = {}
        self._packed_originals: Dict[str, np.ndarray] = {}
        self._dirty: set = set()
        for name in self.field_names:
            originals = [agent._state[name] for agent in self.agents]
            packed = pack_column(originals)
            self._columns[name] = packed
            self._originals[name] = originals
            self._packed_originals[name] = packed.copy()

    def __len__(self) -> int:
        return len(self.agents)

    def row_of(self, agent) -> int:
        """Row index of ``agent`` (by object identity)."""
        return self._row_of[id(agent)]

    def column(self, name: str) -> np.ndarray:
        """The packed ``float64`` column for state field ``name``."""
        return self._columns[name]

    def set_column(self, name: str, values: np.ndarray) -> None:
        """Replace a column and mark it dirty for :meth:`writeback`."""
        column = np.asarray(values, dtype=np.float64)
        if column.shape != (len(self.agents),):
            raise ValueError(
                f"column {name!r} has shape {column.shape}, "
                f"expected ({len(self.agents)},)"
            )
        self._columns[name] = column
        self._dirty.add(name)

    def mark_dirty(self, name: str) -> None:
        """Mark a column mutated in place as needing :meth:`writeback`."""
        if name not in self._columns:
            raise KeyError(name)
        self._dirty.add(name)

    @property
    def dirty_fields(self) -> frozenset:
        """The set of columns that will be written back."""
        return frozenset(self._dirty)

    def writeback(self) -> None:
        """Write dirty columns back into the agents' ``_state`` dicts.

        Cells whose packed value is unchanged restore the original Python
        object (preserving its type and, for NaN, its identity); changed
        cells are written as Python floats — matching what the interpreted
        update path stores for computed values.
        """
        for name in sorted(self._dirty):
            column = self._columns[name]
            originals = self._originals[name]
            packed_originals = self._packed_originals[name]
            for row, agent in enumerate(self.agents):
                new = float(column[row])
                if _cells_equal(new, float(packed_originals[row])):
                    agent._state[name] = originals[row]
                else:
                    agent._state[name] = new
        self._dirty.clear()
