"""Structure-of-arrays (SoA) packing for per-shard agent state.

The interpreted runtime stores agent state as one ``dict`` per agent object
(:class:`~repro.core.agent.Agent`).  The columnar plan kernels
(:mod:`repro.brasil.kernels`) instead want each numeric field of a class as
one contiguous NumPy column so a whole query or update phase becomes a
handful of array operations.  :class:`AgentTable` is the bridge: it packs
one class's agents — in the same canonical order the
:class:`~repro.spatial.columnar.PointSet` snapshot harvested by
``Worker.distribute`` uses — into ``float64`` columns, and writes dirty
columns back to the owning objects afterwards.

Bit-identity is the contract, so packing is conservative:

* ``float`` values pass through exactly (they already are IEEE doubles);
* ``bool`` packs as 0.0/1.0 and ``int`` packs as its exact ``float64``
  value **only** when the round-trip is lossless (|v| ≤ 2**53 in effect);
* anything else — strings, tuples, ``None``, or an integer a double cannot
  represent (the "far-origin position" overflow case) — raises
  :class:`UnpackableValueError` so the caller falls back to the
  interpreted per-object path instead of silently corrupting state.

Writeback is keyed by the *object references* captured at pack time, not by
row position in some later list, so agents born or killed between pack and
writeback cannot shift rows: new agents are simply not in the table, and
rows whose agents left the world write to an unreferenced ``_state`` dict,
which is harmless.  A cell whose packed value never changed writes the
*original* Python object back (same type, same NaN payload), making a
pack → writeback round-trip bit-identical to not packing at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np


class UnpackableValueError(ValueError):
    """A field value cannot be packed into a ``float64`` column losslessly."""


def pack_value(value) -> float:
    """Return ``value`` as an exact ``float64``, or raise.

    Accepts floats (verbatim, NaN/inf included), bools (0.0/1.0) and ints
    that survive an exact ``int → float → int`` round trip.  Everything
    else raises :class:`UnpackableValueError`.
    """
    if type(value) is float:
        return value
    if type(value) is bool:
        return 1.0 if value else 0.0
    if type(value) is int:
        try:
            as_float = float(value)
        except OverflowError as exc:
            raise UnpackableValueError(f"int too large for float64: {value!r}") from exc
        if math.isinf(as_float) or int(as_float) != value:
            raise UnpackableValueError(
                f"int does not round-trip through float64: {value!r}"
            )
        return as_float
    raise UnpackableValueError(f"cannot pack {type(value).__name__} value {value!r}")


def pack_column(values: Iterable) -> np.ndarray:
    """Pack a sequence of field values into one ``float64`` column."""
    return np.array([pack_value(value) for value in values], dtype=np.float64)


#: Per-cell kind tags of a mixed :class:`PackedColumn` ("m"): the cell's
#: Python type, so decoding restores `float` vs `bool` vs `int` exactly.
CELL_FLOAT, CELL_BOOL, CELL_INT, CELL_ESCAPE = 0, 1, 2, 3


@dataclass
class PackedColumn:
    """One delta column packed standalone (no owning :class:`AgentTable`).

    ``kind`` selects the layout:

    * ``"f"`` — every cell is a ``float``; ``data`` is a ``float64`` array
      (bit-exact, NaN payloads and signed zeros included);
    * ``"i"`` — every cell is an ``int`` representable as ``int64``;
      ``data`` is an ``int64`` array (exact for the whole range, so
      ``2**53 + 1`` survives where a ``float64`` cell could not);
    * ``"b"`` — every cell is a ``bool``; ``data`` is a ``bool`` array;
    * ``"m"`` — mixed: ``data`` holds :func:`pack_value` doubles,
      ``cell_kinds`` tags each cell's Python type, and cells no double can
      carry (strings, tuples, out-of-range ints, ...) are ``CELL_ESCAPE``
      entries consumed in row order from ``escapes`` — the pickle escape
      column that keeps bit-identity off the table entirely.

    The dataclass itself is picklable, and the bulk data are NumPy arrays,
    so pickling a frame of packed columns writes raw buffers at C speed
    instead of walking Python objects cell by cell.
    """

    kind: str
    data: np.ndarray | None = None
    cell_kinds: np.ndarray | None = None
    escapes: list | None = None

    def __len__(self) -> int:
        return 0 if self.data is None else len(self.data)


def pack_cells(values: Sequence) -> PackedColumn:
    """Pack one column of delta cells, preserving every cell's exact type.

    Homogeneous columns (the overwhelmingly common case for agent state)
    take an all-array fast path; anything else falls into the mixed layout
    with per-cell kind tags and the pickle escape list.  The contract is
    ``unpack_cells(pack_cells(values)) == values`` with *identical* types
    and bit patterns, for arbitrary Python values.
    """
    # set(map(...)) runs the type scan at C speed; columns are almost
    # always homogeneous, so this one pass decides the layout.
    kinds = set(map(type, values))
    if not kinds or kinds == {float}:
        return PackedColumn("f", np.asarray(values, dtype=np.float64))
    if kinds == {bool}:
        return PackedColumn("b", np.asarray(values, dtype=np.bool_))
    if kinds == {int}:
        try:
            return PackedColumn("i", np.asarray(values, dtype=np.int64))
        except OverflowError:
            pass  # an int outside int64: fall through to the escape column
    data = np.zeros(len(values), dtype=np.float64)
    cell_kinds = np.empty(len(values), dtype=np.uint8)
    escapes: list = []
    for row, value in enumerate(values):
        kind = type(value)
        if kind is float:
            cell_kinds[row] = CELL_FLOAT
            data[row] = value
        elif kind is bool:
            cell_kinds[row] = CELL_BOOL
            data[row] = 1.0 if value else 0.0
        elif kind is int:
            try:
                data[row] = pack_value(value)
            except UnpackableValueError:
                cell_kinds[row] = CELL_ESCAPE
                escapes.append(value)
            else:
                cell_kinds[row] = CELL_INT
        else:
            cell_kinds[row] = CELL_ESCAPE
            escapes.append(value)
    return PackedColumn("m", data, cell_kinds, escapes)


def unpack_cells(column: PackedColumn) -> list:
    """Restore the exact Python cells of a column packed by :func:`pack_cells`."""
    if column.kind != "m":
        # ndarray.tolist() rebuilds native Python floats/ints/bools with the
        # element's exact value (bit pattern included for float64).
        return column.data.tolist()
    out: list = []
    escapes = iter(column.escapes or ())
    data = column.data
    for row, kind in enumerate(column.cell_kinds):
        if kind == CELL_FLOAT:
            out.append(float(data[row]))
        elif kind == CELL_BOOL:
            out.append(bool(data[row]))
        elif kind == CELL_INT:
            out.append(int(data[row]))
        else:
            out.append(next(escapes))
    return out


def _cells_equal(a: float, b: float) -> bool:
    """Exact cell equality: same double, NaN equal to NaN, -0.0 != 0.0."""
    if math.isnan(a):
        return math.isnan(b)
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


class AgentTable:
    """Columnar (structure-of-arrays) view over one class's agents.

    ``agents`` must all be instances of the same agent class and should be
    supplied in canonical order (``sorted(key=agent_sort_key)``) so rows
    line up with the worker's ``PointSet`` snapshot.  ``field_names``
    defaults to every declared state field of the class, in declaration
    order — the same order ``position()`` uses for spatial fields.
    """

    def __init__(self, agents: Sequence, field_names: Sequence[str] | None = None):
        self.agents: List = list(agents)
        if field_names is None:
            if self.agents:
                field_names = list(type(self.agents[0])._state_fields)
            else:
                field_names = []
        self.field_names: List[str] = list(field_names)
        self._row_of: Dict[int, int] = {id(a): i for i, a in enumerate(self.agents)}
        self._columns: Dict[str, np.ndarray] = {}
        self._originals: Dict[str, list] = {}
        self._packed_originals: Dict[str, np.ndarray] = {}
        self._dirty: set = set()
        for name in self.field_names:
            originals = [agent._state[name] for agent in self.agents]
            packed = pack_column(originals)
            self._columns[name] = packed
            self._originals[name] = originals
            self._packed_originals[name] = packed.copy()

    def __len__(self) -> int:
        return len(self.agents)

    def row_of(self, agent) -> int:
        """Row index of ``agent`` (by object identity)."""
        return self._row_of[id(agent)]

    def column(self, name: str) -> np.ndarray:
        """The packed ``float64`` column for state field ``name``."""
        return self._columns[name]

    def set_column(self, name: str, values: np.ndarray) -> None:
        """Replace a column and mark it dirty for :meth:`writeback`."""
        column = np.asarray(values, dtype=np.float64)
        if column.shape != (len(self.agents),):
            raise ValueError(
                f"column {name!r} has shape {column.shape}, "
                f"expected ({len(self.agents)},)"
            )
        self._columns[name] = column
        self._dirty.add(name)

    def mark_dirty(self, name: str) -> None:
        """Mark a column mutated in place as needing :meth:`writeback`."""
        if name not in self._columns:
            raise KeyError(name)
        self._dirty.add(name)

    @property
    def dirty_fields(self) -> frozenset:
        """The set of columns that will be written back."""
        return frozenset(self._dirty)

    def writeback(self) -> None:
        """Write dirty columns back into the agents' ``_state`` dicts.

        Cells whose packed value is unchanged restore the original Python
        object (preserving its type and, for NaN, its identity); changed
        cells are written as Python floats — matching what the interpreted
        update path stores for computed values.
        """
        for name in sorted(self._dirty):
            column = self._columns[name]
            originals = self._originals[name]
            packed_originals = self._packed_originals[name]
            for row, agent in enumerate(self.agents):
                new = float(column[row])
                if _cells_equal(new, float(packed_originals[row])):
                    agent._state[name] = originals[row]
                else:
                    agent._state[name] = new
        self._dirty.clear()
