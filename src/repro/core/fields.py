"""State and effect field descriptors.

Agent classes declare their attributes with :class:`StateField` and
:class:`EffectField`, mirroring BRASIL's ``state``/``effect`` tags:

.. code-block:: python

    class Fish(Agent):
        x = StateField(0.0, spatial=True, visibility=5.0, reachability=1.0)
        y = StateField(0.0, spatial=True, visibility=5.0, reachability=1.0)
        vx = StateField(0.0)
        vy = StateField(0.0)
        avoid_x = EffectField(SUM)
        avoid_y = EffectField(SUM)
        count = EffectField(COUNT)

The descriptors enforce the read/write rules of the state-effect pattern
(see :mod:`repro.core.phase`) and, for effect fields, route assignments
through the field's combinator so that concurrent writes from many agents are
order-independent.
"""

from __future__ import annotations

from typing import Any

from repro.core.combinators import Combinator, get_combinator
from repro.core.errors import PhaseViolationError
from repro.core.phase import Phase, current_phase, enforcement_enabled


class StateField:
    """A public state attribute, updated only at tick boundaries.

    Parameters
    ----------
    default:
        Initial value for agents that do not override it at construction.
    spatial:
        True when this field is one coordinate of the agent's spatial
        location.  The agent's position is the tuple of its spatial fields in
        declaration order.
    visibility:
        For spatial fields: how far (in this dimension) the agent can *see* —
        i.e. read other agents or assign effects to them.  ``None`` means
        unbounded visibility.
    reachability:
        For spatial fields: how far the agent can *move* in one tick.  The
        update phase clamps changes to this field to the reachability bound.
        ``None`` means unbounded.
    doc:
        Optional human-readable description.
    """

    def __init__(
        self,
        default: Any = 0.0,
        spatial: bool = False,
        visibility: float | None = None,
        reachability: float | None = None,
        doc: str | None = None,
    ):
        self.default = default
        self.spatial = bool(spatial)
        self.visibility = None if visibility is None else float(visibility)
        self.reachability = None if reachability is None else float(reachability)
        self.doc = doc
        self.name: str | None = None
        if not self.spatial and (visibility is not None or reachability is not None):
            raise ValueError("visibility/reachability only apply to spatial state fields")

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return instance._state[self.name]

    def __set__(self, instance, value):
        if enforcement_enabled():
            phase_now = current_phase()
            if phase_now is Phase.QUERY:
                raise PhaseViolationError(
                    f"state field {self.name!r} written during the query phase; "
                    "state is read-only while effects are being computed"
                )
            if phase_now is Phase.UPDATE and not instance._updating:
                raise PhaseViolationError(
                    f"state field {self.name!r} of agent {instance.agent_id} written "
                    "during another agent's update phase; agents may only update "
                    "their own state"
                )
        if (
            self.spatial
            and self.reachability is not None
            and current_phase() is Phase.UPDATE
        ):
            # Reachability clamp: the new coordinate may not move farther than
            # the reachability bound from the coordinate at the start of the tick.
            old = instance._state[self.name]
            lo, hi = old - self.reachability, old + self.reachability
            value = min(max(value, lo), hi)
        instance._state[self.name] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "spatial state" if self.spatial else "state"
        return f"<{kind} field {self.name!r} default={self.default!r}>"


class EffectField:
    """An effect attribute aggregated with a combinator during the query phase.

    Assignments during the query phase (``agent.field = value``) are folded
    into the field's accumulator with the combinator — they are *aggregated*,
    not overwritten, matching BRASIL's ``<-`` operator.  During the update
    phase the field is read-only and yields the finalized aggregate.
    """

    def __init__(self, combinator: Combinator | str = "sum", doc: str | None = None):
        self.combinator = get_combinator(combinator)
        self.doc = doc
        self.name: str | None = None

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        if enforcement_enabled() and current_phase() is Phase.QUERY:
            raise PhaseViolationError(
                f"effect field {self.name!r} read during the query phase; "
                "effects are write-only until the update phase"
            )
        return self.combinator.finalize(instance._effects[self.name])

    def __set__(self, instance, value):
        phase_now = current_phase()
        if phase_now is Phase.QUERY:
            instance._effects[self.name] = self.combinator.combine(
                instance._effects[self.name], value
            )
            instance._effects_touched.add(self.name)
            return
        if enforcement_enabled() and phase_now is Phase.UPDATE:
            raise PhaseViolationError(
                f"effect field {self.name!r} written during the update phase; "
                "effects may only be assigned in the query phase"
            )
        # IDLE: direct (raw) assignment, used by setup code and tests.
        instance._effects[self.name] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<effect field {self.name!r} combinator={self.combinator.name}>"
