"""repro — a from-scratch Python reproduction of BRACE/BRASIL.

The package reproduces *Behavioral Simulations in MapReduce* (Wang et al.,
VLDB 2010).  It contains the agent model and state-effect tick engine
(:mod:`repro.core`), a spatial substrate (:mod:`repro.spatial`), an in-memory
iterative MapReduce engine (:mod:`repro.mapreduce`), a simulated
shared-nothing cluster (:mod:`repro.cluster`), the BRACE runtime
(:mod:`repro.brace`), the BRASIL language (:mod:`repro.brasil`), the paper's
simulation workloads (:mod:`repro.simulations`), single-node baselines
(:mod:`repro.baselines`), statistics (:mod:`repro.stats`) and the experiment
harness regenerating every table and figure (:mod:`repro.harness`).

The recommended entry point is the unified session layer (:mod:`repro.api`):
:class:`Simulation` runs both Python agent models and BRASIL scripts on any
executor backend and returns a structured :class:`RunResult`.
"""

from repro.core.agent import Agent
from repro.core.fields import StateField, EffectField
from repro.core.combinators import (
    SUM,
    COUNT,
    MIN,
    MAX,
    MEAN,
    PRODUCT,
    ANY,
    ALL,
    COLLECT,
)
from repro.core.world import World
from repro.core.engine import SequentialEngine
from repro.brace.runtime import BraceRuntime
from repro.brace.config import BraceConfig
from repro.api import Provenance, RunResult, Simulation, TickEvent
from repro.history import History

__version__ = "1.2.0"

__all__ = [
    "Agent",
    "StateField",
    "EffectField",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "MEAN",
    "PRODUCT",
    "ANY",
    "ALL",
    "COLLECT",
    "World",
    "SequentialEngine",
    "BraceRuntime",
    "BraceConfig",
    "Simulation",
    "RunResult",
    "Provenance",
    "TickEvent",
    "History",
    "__version__",
]
