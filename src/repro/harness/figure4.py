"""Figure 4 — fish single-node performance: indexing vs visibility range.

The fish school simulation is run on a single node with and without the
k-d tree index while the visibility (attraction) radius ``rho`` grows.  As in
the paper, indexing helps by a factor of two to three, but its advantage
shrinks as the visibility range grows because each index probe returns more
and more of the school.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import SequentialEngine
from repro.harness.common import format_table
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


@dataclass
class Figure4Result:
    """Total simulation time per visibility range, with and without indexing."""

    ticks: int
    num_fish: int
    visibility_ranges: list[float] = field(default_factory=list)
    no_index_seconds: list[float] = field(default_factory=list)
    index_seconds: list[float] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per visibility range."""
        return [
            {
                "visibility": visibility,
                "brace_no_index_seconds": no_index,
                "brace_index_seconds": indexed,
            }
            for visibility, no_index, indexed in zip(
                self.visibility_ranges, self.no_index_seconds, self.index_seconds
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the two curves."""
        rows = [
            [row["visibility"], row["brace_no_index_seconds"], row["brace_index_seconds"]]
            for row in self.rows()
        ]
        return format_table(
            ["Visibility range", "BRACE no-indexing [s]", "BRACE indexing [s]"],
            rows,
            title="Figure 4: Fish — total simulation time vs visibility range",
        )


def run_figure4(
    visibility_ranges: tuple[float, ...] = (3.0, 6.0, 12.0, 24.0, 48.0),
    num_fish: int = 400,
    ticks: int = 5,
    seed: int = 5,
    spatial_backend: str | None = "python",
) -> Figure4Result:
    """Sweep the visibility radius and time the indexed and un-indexed engines.

    ``spatial_backend`` selects how the *indexed* series executes its joins;
    the default is the paper-faithful interpreted path, and ``--backend
    vectorized`` from the CLI re-runs the series on the columnar kernels.
    The un-indexed series is always the interpreted quadratic baseline.
    """
    result = Figure4Result(ticks=ticks, num_fish=num_fish)
    for visibility in visibility_ranges:
        parameters = CouzinParameters(rho=visibility, seed_region=120.0)
        fish_class = make_fish_class(parameters)
        result.visibility_ranges.append(visibility)

        world = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        engine = SequentialEngine(world, index=None, check_visibility=False)
        start = time.perf_counter()
        engine.run(ticks)
        result.no_index_seconds.append(time.perf_counter() - start)

        world = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        engine = SequentialEngine(
            world, index="kdtree", check_visibility=False, spatial_backend=spatial_backend
        )
        start = time.perf_counter()
        engine.run(ticks)
        result.index_seconds.append(time.perf_counter() - start)
    return result
