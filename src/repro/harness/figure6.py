"""Figure 6 — traffic scale-up.

The traffic simulation represents a linear road segment whose load stays
uniform, so throughput grows nearly linearly with the number of workers even
with load balancing disabled.  The problem size (segment length, and with it
the number of vehicles) is scaled linearly with the worker count, so the
experiment measures *scale-up* rather than speed-up, exactly as in the paper.
The dip the paper observes around 20 nodes — when the job stops fitting on a
single switch — is reproduced by the network model's inter-switch penalty.

:func:`run_figure6` uses the hand-written Python ``Vehicle`` model;
:func:`run_figure6_brasil` reproduces the same curve *from BRASIL source*
through :func:`repro.brasil.runner.run_script` — the paper's end-to-end
claim that scripts, not hand-written agents, are what scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.harness.common import format_table
from repro.simulations.traffic import TrafficParameters, build_traffic_world, make_vehicle_class
from repro.stats.summary import scaling_efficiency


@dataclass
class Figure6Result:
    """Throughput per worker count for the traffic scale-up."""

    ticks: int
    vehicles_per_worker: int
    worker_counts: list[int] = field(default_factory=list)
    throughputs: list[float] = field(default_factory=list)
    agents: list[int] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per cluster size."""
        efficiencies = scaling_efficiency(self.throughputs, self.worker_counts)
        return [
            {
                "workers": workers,
                "agents": agents,
                "throughput": throughput,
                "scaleup_efficiency": efficiency,
            }
            for workers, agents, throughput, efficiency in zip(
                self.worker_counts, self.agents, self.throughputs, efficiencies
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the scale-up curve."""
        rows = [
            [row["workers"], row["agents"], row["throughput"], row["scaleup_efficiency"]]
            for row in self.rows()
        ]
        return format_table(
            ["Workers", "Vehicles", "Throughput [agent ticks/s]", "Scale-up efficiency"],
            rows,
            title="Figure 6: Traffic — scalability (no load balancing)",
        )


def run_figure6(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 36),
    vehicles_per_worker: int = 100,
    ticks: int = 3,
    seed: int = 31,
    base_parameters: TrafficParameters | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
) -> Figure6Result:
    """Scale the segment with the worker count and measure throughput.

    ``executor``/``max_workers`` select the execution backend the simulated
    workers' phases actually run on (see ``BraceConfig``); virtual-time
    throughput is backend-independent, but wall-clock time is not.
    """
    base_parameters = base_parameters or TrafficParameters()
    result = Figure6Result(ticks=ticks, vehicles_per_worker=vehicles_per_worker)
    for workers in worker_counts:
        total_vehicles = vehicles_per_worker * workers
        segment_length = total_vehicles / (
            base_parameters.density_per_lane * base_parameters.num_lanes
        )
        parameters = base_parameters.scaled_to(segment_length)
        vehicle_class = make_vehicle_class(parameters)
        world = build_traffic_world(
            parameters, seed=seed, vehicle_class=vehicle_class, num_vehicles=total_vehicles
        )
        config = BraceConfig(
            num_workers=workers,
            ticks_per_epoch=max(1, ticks),
            index="kdtree",
            check_visibility=False,
            load_balance=False,
            executor=executor,
            max_workers=max_workers,
        )
        with Simulation.from_agents(world, config=config) as session:
            run = session.run(ticks)
            result.worker_counts.append(workers)
            result.agents.append(total_vehicles)
            result.throughputs.append(run.throughput())
    return result


def run_figure6_brasil(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 36),
    vehicles_per_worker: int = 100,
    ticks: int = 3,
    seed: int = 31,
    spacing: float = 20.0,
    executor: str = "serial",
    max_workers: int | None = None,
) -> Figure6Result:
    """Figure 6 from BRASIL source: scale a ring road with the worker count.

    The road length grows as ``vehicles_per_worker * workers * spacing`` so
    density stays constant, mirroring :func:`run_figure6`'s scale-up design.
    Each cluster size compiles a ring of the right length (BRASIL has no
    parameters, so the length is baked into the generated source) and runs
    it through ``run_script`` on the configured executor backend.
    """
    from repro.brasil.runner import run_script
    from repro.simulations.traffic.brasil_scripts import traffic_script

    result = Figure6Result(ticks=ticks, vehicles_per_worker=vehicles_per_worker)
    for workers in worker_counts:
        total_vehicles = vehicles_per_worker * workers
        length = total_vehicles * spacing
        config = BraceConfig(
            num_workers=workers,
            ticks_per_epoch=max(1, ticks),
            check_visibility=False,
            load_balance=False,
            executor=executor,
            max_workers=max_workers,
        )
        run = run_script(
            traffic_script(length=length),
            config,
            ticks=ticks,
            num_agents=total_vehicles,
            bounds=((0.0, length),),
            seed=seed,
        )
        result.worker_counts.append(workers)
        result.agents.append(total_vehicles)
        result.throughputs.append(run.throughput())
    return result
