"""Figure 5 — predator simulation: the effect of indexing and effect inversion.

Four configurations of the predator simulation on a 16-worker BRACE cluster,
as in the paper:

* **No-Opt** — non-local bite assignments (two reduce passes) and no spatial
  index in the query phase;
* **Idx-Only** — non-local assignments with the k-d tree index;
* **Inv-Only** — the effect-inverted (local) formulation, no index, single
  reduce pass;
* **Idx+Inv** — inverted and indexed.

Throughput is reported in agent-ticks per (virtual) second from the cluster
cost model; the paper observes >20% improvement from inversion with or
without indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.harness.common import format_table
from repro.simulations.predator import PredatorParameters, build_predator_world


@dataclass
class Figure5Result:
    """Throughput of the four optimization configurations."""

    num_fish: int
    workers: int
    ticks: int
    throughputs: dict[str, float] = field(default_factory=dict)

    CONFIGURATIONS = ("No-Opt", "Idx-Only", "Inv-Only", "Idx+Inv")

    def rows(self) -> list[dict[str, float]]:
        """One row per configuration."""
        return [
            {"configuration": name, "throughput": self.throughputs.get(name, 0.0)}
            for name in self.CONFIGURATIONS
        ]

    def improvement_from_inversion(self, with_index: bool) -> float:
        """Relative throughput gain of inversion (e.g. 0.2 = +20%)."""
        if with_index:
            before, after = self.throughputs.get("Idx-Only", 0.0), self.throughputs.get("Idx+Inv", 0.0)
        else:
            before, after = self.throughputs.get("No-Opt", 0.0), self.throughputs.get("Inv-Only", 0.0)
        if before == 0:
            return 0.0
        return after / before - 1.0

    def format_table(self) -> str:
        """Text rendering of the four bars."""
        rows = [[row["configuration"], row["throughput"]] for row in self.rows()]
        return format_table(
            ["Configuration", "Throughput [agent ticks/s]"],
            rows,
            title="Figure 5: Predator — effect inversion and indexing (16 workers)",
        )


def _run_configuration(
    num_fish: int,
    workers: int,
    ticks: int,
    seed: int,
    parameters: PredatorParameters,
    non_local: bool,
    index: str | None,
) -> float:
    world = build_predator_world(num_fish, parameters, seed=seed, non_local=non_local)
    config = BraceConfig(
        num_workers=workers,
        ticks_per_epoch=max(1, ticks),
        non_local_effects=non_local,
        index=index,
        check_visibility=False,
        load_balance=False,
    )
    with Simulation.from_agents(world, config=config) as session:
        return session.run(ticks).throughput()


def run_figure5(
    num_fish: int = 600,
    workers: int = 16,
    ticks: int = 5,
    seed: int = 23,
    parameters: PredatorParameters | None = None,
) -> Figure5Result:
    """Run the four configurations and collect their throughputs."""
    parameters = parameters or PredatorParameters()
    result = Figure5Result(num_fish=num_fish, workers=workers, ticks=ticks)
    result.throughputs["No-Opt"] = _run_configuration(
        num_fish, workers, ticks, seed, parameters, non_local=True, index=None
    )
    result.throughputs["Idx-Only"] = _run_configuration(
        num_fish, workers, ticks, seed, parameters, non_local=True, index="kdtree"
    )
    result.throughputs["Inv-Only"] = _run_configuration(
        num_fish, workers, ticks, seed, parameters, non_local=False, index=None
    )
    result.throughputs["Idx+Inv"] = _run_configuration(
        num_fish, workers, ticks, seed, parameters, non_local=False, index="kdtree"
    )
    return result
