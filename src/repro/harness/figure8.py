"""Figure 8 — fish per-epoch time with and without load balancing.

A fixed-size cluster runs the fish school for many epochs.  With load
balancing the time per epoch stays essentially flat; without it the epochs
take longer as the school drifts into fewer and fewer strips, eventually
reflecting all the work being done by a couple of workers — the behaviour of
Figure 8 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.harness.common import format_table
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


@dataclass
class Figure8Result:
    """Per-epoch virtual time for the two configurations."""

    workers: int
    num_fish: int
    ticks_per_epoch: int
    epochs: list[int] = field(default_factory=list)
    seconds_with_lb: list[float] = field(default_factory=list)
    seconds_without_lb: list[float] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per epoch."""
        return [
            {"epoch": epoch, "seconds_lb": with_lb, "seconds_no_lb": without_lb}
            for epoch, with_lb, without_lb in zip(
                self.epochs, self.seconds_with_lb, self.seconds_without_lb
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the two epoch-time series."""
        rows = [
            [row["epoch"], row["seconds_lb"], row["seconds_no_lb"]] for row in self.rows()
        ]
        return format_table(
            ["Epoch", "Epoch time with LB [s]", "Epoch time without LB [s]"],
            rows,
            title="Figure 8: Fish — per-epoch simulation time (load balancing)",
        )


def _epoch_times(world, workers: int, epochs: int, ticks_per_epoch: int, load_balance: bool):
    config = BraceConfig(
        num_workers=workers,
        ticks_per_epoch=ticks_per_epoch,
        index="kdtree",
        check_visibility=False,
        load_balance=load_balance,
        load_balance_threshold=1.1,
    )
    with Simulation.from_agents(world, config=config) as session:
        return session.run(epochs * ticks_per_epoch).metrics.epoch_times()


def run_figure8(
    workers: int = 16,
    num_fish: int = 800,
    epochs: int = 8,
    ticks_per_epoch: int = 3,
    seed: int = 47,
    parameters: CouzinParameters | None = None,
) -> Figure8Result:
    """Run the fish school for several epochs with and without load balancing."""
    parameters = parameters or CouzinParameters(seed_region=300.0)
    fish_class = make_fish_class(parameters)
    result = Figure8Result(workers=workers, num_fish=num_fish, ticks_per_epoch=ticks_per_epoch)

    world_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
    with_lb = _epoch_times(world_lb, workers, epochs, ticks_per_epoch, load_balance=True)
    world_no_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
    without_lb = _epoch_times(world_no_lb, workers, epochs, ticks_per_epoch, load_balance=False)

    for epoch_index in range(min(len(with_lb), len(without_lb))):
        result.epochs.append(epoch_index + 1)
        result.seconds_with_lb.append(with_lb[epoch_index])
        result.seconds_without_lb.append(without_lb[epoch_index])
    return result
