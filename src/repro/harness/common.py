"""Shared helpers for the experiment harness."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned text table.

    Numbers are formatted compactly; everything else with ``str``.
    """

    def render(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.3g}"
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rendered)) if rendered else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def speedup(reference: float, candidate: float) -> float:
    """``reference / candidate`` guarding against division by zero."""
    if candidate == 0:
        return float("inf") if reference > 0 else 1.0
    return reference / candidate
