"""Command-line entry point: ``python -m repro.harness <experiment> [--full]``.

``<experiment>`` is one of ``table2``, ``figure3`` … ``figure8`` or ``all``.
The default parameters are laptop-sized; ``--full`` uses larger, closer to
paper-scale settings (minutes of runtime).
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure6_brasil,
    run_figure7,
    run_figure7_brasil,
    run_figure8,
    run_table2,
)

_EXPERIMENTS = {
    "table2": lambda full: run_table2(segment_length=20000.0 if full else 2000.0,
                                      ticks=200 if full else 60),
    "figure3": lambda full: run_figure3(
        segment_lengths=(2500.0, 5000.0, 10000.0, 20000.0) if full else (500.0, 1000.0, 2000.0, 4000.0),
        ticks=20 if full else 10,
    ),
    "figure4": lambda full: run_figure4(
        visibility_ranges=(25.0, 50.0, 100.0, 200.0, 300.0) if full else (3.0, 6.0, 12.0, 24.0, 48.0),
        num_fish=2000 if full else 400,
        ticks=10 if full else 5,
    ),
    "figure5": lambda full: run_figure5(num_fish=4000 if full else 600, ticks=10 if full else 5),
    "figure6": lambda full: run_figure6(
        vehicles_per_worker=400 if full else 100, ticks=5 if full else 3
    ),
    "figure7": lambda full: run_figure7(
        fish_per_worker=200 if full else 60, ticks=10 if full else 6
    ),
    "figure8": lambda full: run_figure8(
        num_fish=3000 if full else 800, epochs=20 if full else 8
    ),
    "figure6-brasil": lambda full: run_figure6_brasil(
        vehicles_per_worker=400 if full else 100, ticks=5 if full else 3
    ),
    "figure7-brasil": lambda full: run_figure7_brasil(
        fish_per_worker=200 if full else 60, ticks=10 if full else 6
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Run one (or all) of the paper's experiments and print its table."""
    parser = argparse.ArgumentParser(prog="python -m repro.harness", description=__doc__)
    parser.add_argument("experiment", choices=[*_EXPERIMENTS, "all"])
    parser.add_argument("--full", action="store_true", help="use paper-scale parameters")
    arguments = parser.parse_args(argv)

    names = list(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for name in names:
        result = _EXPERIMENTS[name](arguments.full)
        print(result.format_table())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
