"""Command-line entry point: ``python -m repro.harness <experiment> [--full]``.

``<experiment>`` is one of the names in the experiment registry
(``table2``, ``figure3`` … ``figure8``, the ``*-brasil`` variants) or
``all``.  The default parameters are laptop-sized; ``--full`` uses the
registry's larger, closer to paper-scale settings (minutes of runtime).
Both scales live side by side in :mod:`repro.harness.registry`.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.registry import EXPERIMENTS, experiment_names, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Run one (or all) of the paper's experiments and print its table."""
    parser = argparse.ArgumentParser(prog="python -m repro.harness", description=__doc__)
    parser.add_argument("experiment", choices=[*experiment_names(), "all"])
    parser.add_argument("--full", action="store_true", help="use paper-scale parameters")
    parser.add_argument(
        "--backend",
        choices=["python", "vectorized"],
        default=None,
        help=(
            "spatial backend for the indexed join series of experiments "
            "that take one (figure3, figure4)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="describe the chosen experiments and exit"
    )
    arguments = parser.parse_args(argv)

    names = experiment_names() if arguments.experiment == "all" else [arguments.experiment]
    if arguments.list:
        for name in names:
            experiment = EXPERIMENTS[name]
            backend = "  [--backend]" if experiment.backend_parameter else ""
            print(f"{name:15s} {experiment.description}{backend}")
        return 0
    for name in names:
        backend = arguments.backend
        if backend is not None and EXPERIMENTS[name].backend_parameter is None:
            if arguments.experiment == "all":
                backend = None  # only applies to experiments that take one
            else:
                parser.error(f"experiment {name!r} does not take --backend")
        result = run_experiment(name, arguments.full, backend)
        print(result.format_table())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
