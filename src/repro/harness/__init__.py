"""Experiment harness: one driver per table/figure of the paper's evaluation.

Every ``run_*`` function takes scale parameters with small defaults (so the
benchmark suite finishes in minutes on a laptop) and returns a result object
with ``rows()`` (list of dicts, one per table row / curve point) and
``format_table()`` (an aligned text table matching what the paper reports).
Run ``python -m repro.harness <experiment>`` for a command-line entry point.

==========  =================================================================
Driver      Paper result it regenerates
==========  =================================================================
table2      Table 2 — RMSPE validation of the traffic model vs the
            hand-coded MITSIM-style baseline.
figure3     Figure 3 — traffic single-node time vs segment length
            (MITSIM vs BRACE without/with spatial indexing).
figure4     Figure 4 — fish single-node time vs visibility range
            (with/without spatial indexing).
figure5     Figure 5 — predator throughput under the four optimization
            configurations (No-Opt, Idx-Only, Inv-Only, Idx+Inv).
figure6     Figure 6 — traffic scale-up (throughput vs worker count).
figure7     Figure 7 — fish scale-up with and without load balancing.
figure8     Figure 8 — fish per-epoch time with and without load balancing.
==========  =================================================================

``run_figure6_brasil`` and ``run_figure7_brasil`` regenerate the two
scale-up figures *from BRASIL source* via ``repro.brasil.run_script``
(``figure6-brasil`` / ``figure7-brasil`` on the command line).
"""

from repro.harness.common import format_table
from repro.harness.table2 import rmspe_from_histories, run_table2, Table2Result
from repro.harness.figure3 import run_figure3, Figure3Result
from repro.harness.figure4 import run_figure4, Figure4Result
from repro.harness.figure5 import run_figure5, Figure5Result
from repro.harness.figure6 import run_figure6, run_figure6_brasil, Figure6Result
from repro.harness.figure7 import run_figure7, run_figure7_brasil, Figure7Result
from repro.harness.figure8 import run_figure8, Figure8Result
from repro.harness.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_names,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment_names",
    "run_experiment",
    "run_all",
    "format_table",
    "run_table2",
    "rmspe_from_histories",
    "Table2Result",
    "run_figure3",
    "Figure3Result",
    "run_figure4",
    "Figure4Result",
    "run_figure5",
    "Figure5Result",
    "run_figure6",
    "run_figure6_brasil",
    "Figure6Result",
    "run_figure7",
    "run_figure7_brasil",
    "Figure7Result",
    "run_figure8",
    "Figure8Result",
]
