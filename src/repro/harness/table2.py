"""Table 2 — validation of the traffic model against the hand-coded baseline.

The paper validates its BRASIL reimplementation of MITSIM's lane-changing and
acceleration models by comparing, per lane, the lane changing frequency, the
average density and the average velocity, reported as RMSPE.  Here the agent
implementation (run through the framework with a fixed 200-unit lookahead and
a spatial index) plays the role of the BRACE reimplementation and the
hand-coded per-lane nearest-neighbour simulator plays the role of MITSIM.
Both start from identical initial conditions and use the same per-vehicle
random streams, so the residual error comes from the same source the paper
identifies: the fixed lookahead approximation of the hand-coded simulator's
exact nearest-neighbour access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.mitsim import HandCodedTrafficSimulator
from repro.core.engine import SequentialEngine
from repro.harness.common import format_table
from repro.simulations.traffic import (
    TrafficParameters,
    TrafficStatisticsCollector,
    build_traffic_world,
    compare_lane_statistics,
)
from repro.stats.rmspe import rmspe


@dataclass
class Table2Result:
    """Per-lane RMSPE between the agent implementation and the baseline."""

    parameters: TrafficParameters
    ticks: int
    per_lane: dict[int, dict[str, float]] = field(default_factory=dict)
    agent_summary: dict[int, dict[str, float]] = field(default_factory=dict)
    baseline_summary: dict[int, dict[str, float]] = field(default_factory=dict)

    def rows(self) -> list[dict[str, float]]:
        """One row per lane: change frequency / density / velocity RMSPE (in %)."""
        return [
            {
                "lane": lane + 1,
                "change_frequency_rmspe": metrics["change_frequency"] * 100.0,
                "average_density_rmspe": metrics["average_density"] * 100.0,
                "average_velocity_rmspe": metrics["average_velocity"] * 100.0,
            }
            for lane, metrics in sorted(self.per_lane.items())
        ]

    def format_table(self) -> str:
        """Text rendering matching the layout of Table 2."""
        rows = [
            [
                f"L{row['lane']}",
                f"{row['change_frequency_rmspe']:.2f}%",
                f"{row['average_density_rmspe']:.2f}%",
                f"{row['average_velocity_rmspe']:.3f}%",
            ]
            for row in self.rows()
        ]
        return format_table(
            ["Lane", "Change Frequency", "Avg. Density", "Avg. Velocity"],
            rows,
            title="Table 2: RMSPE for traffic simulation (agent model vs hand-coded baseline)",
        )


def rmspe_from_histories(
    observed,
    reference,
    field: str,
    *,
    reduce: str = "mean",
    window: int | None = None,
    start: int | None = None,
    stop: int | None = None,
    where=None,
) -> float:
    """Table 2's RMSPE measure computed from two recorded tick histories.

    Instead of collecting statistics while the simulators run, both series
    come from persisted trajectories (:class:`repro.history.History`): each
    history is reduced to a per-tick aggregate of ``field`` (optionally
    re-aggregated over ``window``-tick windows, optionally restricted by a
    ``where(agent_id, state)`` predicate — e.g. one lane), and the RMSPE of
    ``observed`` relative to ``reference`` is returned.  This is the
    record-once / analyze-later workflow: validation metrics become history
    queries over runs that already happened.
    """
    observed_series = observed.aggregate_series(
        field, reduce=reduce, start=start, stop=stop, where=where
    )
    reference_series = reference.aggregate_series(
        field, reduce=reduce, start=start, stop=stop, where=where
    )
    if window is not None:
        observed_series = observed.window_aggregate(observed_series, window, reduce)
        reference_series = reference.window_aggregate(reference_series, window, reduce)
    observed_ticks = [tick for tick, _ in observed_series]
    reference_ticks = [tick for tick, _ in reference_series]
    if observed_ticks != reference_ticks:
        raise ValueError(
            "the two histories cover different tick ranges "
            f"({observed_ticks[:1]}..{observed_ticks[-1:]} vs "
            f"{reference_ticks[:1]}..{reference_ticks[-1:]}); "
            "pass explicit start/stop to align them"
        )
    return rmspe(
        [value for _, value in observed_series],
        [value for _, value in reference_series],
    )


def run_table2(
    segment_length: float = 2000.0,
    ticks: int = 60,
    seed: int = 17,
    parameters: TrafficParameters | None = None,
) -> Table2Result:
    """Run both simulators from identical initial conditions and compare them."""
    parameters = (parameters or TrafficParameters()).scaled_to(segment_length)

    world = build_traffic_world(parameters, seed=seed)
    agent_collector = TrafficStatisticsCollector(parameters)
    engine = SequentialEngine(
        world,
        index="kdtree",
        on_tick_end=lambda w, _stats: agent_collector.observe(w.agents()),
    )

    baseline = HandCodedTrafficSimulator(parameters, seed=seed)
    baseline.load_from_world(world)
    baseline_collector = TrafficStatisticsCollector(parameters)

    engine.run(ticks)
    baseline.run(ticks, baseline_collector)

    comparison = compare_lane_statistics(baseline_collector, agent_collector)
    return Table2Result(
        parameters=parameters,
        ticks=ticks,
        per_lane=comparison,
        agent_summary=agent_collector.summary(),
        baseline_summary=baseline_collector.summary(),
    )
