"""Declarative registry of the paper's experiments.

One :class:`Experiment` per table/figure, with its laptop-sized and
paper-scale (``--full``) parameter sets declared side by side instead of
being hand-rolled into the CLI's lambda table.  Both the command line
(``python -m repro.harness``) and programmatic callers
(:func:`run_experiment`, :func:`run_all`) consume the same registry, so the
two can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.harness.figure3 import run_figure3
from repro.harness.figure4 import run_figure4
from repro.harness.figure5 import run_figure5
from repro.harness.figure6 import run_figure6, run_figure6_brasil
from repro.harness.figure7 import run_figure7, run_figure7_brasil
from repro.harness.figure8 import run_figure8
from repro.harness.table2 import run_table2

#: Cost profile of the ``"vectorized"`` columnar grid backend, measured on
#: the 10k-agent fish radius join of ``benchmarks/test_spatial_kernel.py``.
#: Recorded as documentation for tuning and for the rationale behind the
#: optimizer's backend pin (``select_index`` references these figures in
#: its reasoning; no code consumes them at runtime).  Absolute values are
#: machine-dependent — the *ratios* are the point: the interpreted path
#: pays ~1ms of interpreter overhead per probe that the batch kernels
#: amortize into ~1e-7 s per candidate.
VECTORIZED_GRID_COSTS = {
    #: Packing one agent's position into the per-tick float64 snapshot.
    "snapshot_seconds_per_agent": 5e-7,
    #: Binning + lexsort bucketing, per indexed point.
    "build_seconds_per_point": 2e-7,
    #: Batched enumeration + exact filter, per candidate pair examined.
    "join_seconds_per_candidate": 1.3e-7,
    #: Interpreted (python backend) cost per probe at fish-benchmark density,
    #: for comparison.
    "python_seconds_per_probe": 1.1e-3,
    #: Measured wall-clock ratio python/vectorized on the 10k-agent join
    #: (the benchmark asserts >= 5.0).
    "measured_speedup_10k_fish": 7.0,
}


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment: a runner plus its two parameter scales."""

    #: CLI name (``python -m repro.harness <name>``).
    name: str
    #: Which paper result the experiment regenerates.
    description: str
    #: The ``run_*`` harness function executed.
    runner: Callable[..., Any]
    #: Laptop-sized keyword arguments (seconds of runtime).
    laptop: dict[str, Any] = field(default_factory=dict)
    #: Parameters closer to paper scale (minutes of runtime); keys not
    #: present here fall back to the laptop values.
    full: dict[str, Any] = field(default_factory=dict)
    #: Name of the runner's spatial-backend keyword, when it has one —
    #: these experiments accept ``--backend {python,vectorized}`` from the
    #: CLI to re-run their indexed series on either join implementation.
    backend_parameter: str | None = None

    def parameters(
        self, full: bool = False, backend: str | None = None
    ) -> dict[str, Any]:
        """The keyword arguments for one scale (full overrides laptop)."""
        parameters = dict(self.laptop)
        if full:
            parameters.update(self.full)
        if backend is not None:
            if self.backend_parameter is None:
                raise ValueError(
                    f"experiment {self.name!r} does not take a spatial backend"
                )
            parameters[self.backend_parameter] = backend
        return parameters

    def run(self, full: bool = False, backend: str | None = None) -> Any:
        """Execute the experiment; returns its ``*Result`` object."""
        return self.runner(**self.parameters(full, backend))


_REGISTRY = [
    Experiment(
        "table2",
        "Table 2 — RMSPE validation of the traffic model vs the baseline",
        run_table2,
        laptop={"segment_length": 2000.0, "ticks": 60},
        full={"segment_length": 20000.0, "ticks": 200},
    ),
    Experiment(
        "figure3",
        "Figure 3 — traffic single-node time vs segment length",
        run_figure3,
        laptop={"segment_lengths": (500.0, 1000.0, 2000.0, 4000.0), "ticks": 10},
        full={"segment_lengths": (2500.0, 5000.0, 10000.0, 20000.0), "ticks": 20},
        backend_parameter="spatial_backend",
    ),
    Experiment(
        "figure4",
        "Figure 4 — fish single-node time vs visibility range",
        run_figure4,
        laptop={
            "visibility_ranges": (3.0, 6.0, 12.0, 24.0, 48.0),
            "num_fish": 400,
            "ticks": 5,
        },
        full={
            "visibility_ranges": (25.0, 50.0, 100.0, 200.0, 300.0),
            "num_fish": 2000,
            "ticks": 10,
        },
        backend_parameter="spatial_backend",
    ),
    Experiment(
        "figure5",
        "Figure 5 — predator throughput under the four optimizations",
        run_figure5,
        laptop={"num_fish": 600, "ticks": 5},
        full={"num_fish": 4000, "ticks": 10},
    ),
    Experiment(
        "figure6",
        "Figure 6 — traffic scale-up (throughput vs worker count)",
        run_figure6,
        laptop={"vehicles_per_worker": 100, "ticks": 3},
        full={"vehicles_per_worker": 400, "ticks": 5},
    ),
    Experiment(
        "figure7",
        "Figure 7 — fish scale-up with and without load balancing",
        run_figure7,
        laptop={"fish_per_worker": 60, "ticks": 6},
        full={"fish_per_worker": 200, "ticks": 10},
    ),
    Experiment(
        "figure8",
        "Figure 8 — fish per-epoch time with and without load balancing",
        run_figure8,
        laptop={"num_fish": 800, "epochs": 8},
        full={"num_fish": 3000, "epochs": 20},
    ),
    Experiment(
        "figure6-brasil",
        "Figure 6 from BRASIL source via the unified Simulation API",
        run_figure6_brasil,
        laptop={"vehicles_per_worker": 100, "ticks": 3},
        full={"vehicles_per_worker": 400, "ticks": 5},
    ),
    Experiment(
        "figure7-brasil",
        "Figure 7 from BRASIL source via the unified Simulation API",
        run_figure7_brasil,
        laptop={"fish_per_worker": 60, "ticks": 6},
        full={"fish_per_worker": 200, "ticks": 10},
    ),
]

#: Every experiment, keyed by CLI name, in presentation order.
EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment for experiment in _REGISTRY
}


def experiment_names() -> list[str]:
    """Registered experiment names, in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(name: str, full: bool = False, backend: str | None = None) -> Any:
    """Run one registered experiment by name; raises KeyError when unknown.

    ``backend`` forces the spatial backend of experiments that take one
    (``figure3``/``figure4``); passing it for any other experiment raises
    :class:`ValueError`.
    """
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; expected one of: {known}") from None
    return experiment.run(full, backend)


def run_all(full: bool = False) -> dict[str, Any]:
    """Run every registered experiment, returning results keyed by name."""
    return {name: experiment.run(full) for name, experiment in EXPERIMENTS.items()}
