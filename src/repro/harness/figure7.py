"""Figure 7 — fish scale-up with and without load balancing.

The fish school starts concentrated in a small patch of the (large) ocean and
two groups of informed individuals pull it in opposite directions.  Without
load balancing only the few workers whose strips contain fish do any work, so
throughput stops growing with the cluster size; with the one-dimensional load
balancer the strips are re-drawn each epoch to hold roughly the same number
of fish and throughput keeps growing nearly linearly — the behaviour reported
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.harness.common import format_table
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


@dataclass
class Figure7Result:
    """Throughput per worker count, with and without load balancing."""

    ticks: int
    fish_per_worker: int
    worker_counts: list[int] = field(default_factory=list)
    throughput_with_lb: list[float] = field(default_factory=list)
    throughput_without_lb: list[float] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per cluster size."""
        return [
            {
                "workers": workers,
                "throughput_lb": with_lb,
                "throughput_no_lb": without_lb,
            }
            for workers, with_lb, without_lb in zip(
                self.worker_counts, self.throughput_with_lb, self.throughput_without_lb
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the two scale-up curves."""
        rows = [
            [row["workers"], row["throughput_lb"], row["throughput_no_lb"]]
            for row in self.rows()
        ]
        return format_table(
            ["Workers", "Throughput with LB", "Throughput without LB"],
            rows,
            title="Figure 7: Fish — scalability with and without load balancing",
        )


def _run(world, workers: int, ticks: int, load_balance: bool, ticks_per_epoch: int) -> float:
    config = BraceConfig(
        num_workers=workers,
        ticks_per_epoch=ticks_per_epoch,
        index="kdtree",
        check_visibility=False,
        load_balance=load_balance,
        load_balance_threshold=1.1,
    )
    runtime = BraceRuntime(world, config)
    runtime.run(ticks)
    return runtime.throughput()


def run_figure7(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 36),
    fish_per_worker: int = 60,
    ticks: int = 6,
    ticks_per_epoch: int = 2,
    seed: int = 41,
    parameters: CouzinParameters | None = None,
) -> Figure7Result:
    """Scale the school with the worker count, with and without load balancing."""
    parameters = parameters or CouzinParameters(seed_region=300.0)
    fish_class = make_fish_class(parameters)
    result = Figure7Result(ticks=ticks, fish_per_worker=fish_per_worker)
    for workers in worker_counts:
        num_fish = fish_per_worker * workers
        world_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        world_no_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        result.worker_counts.append(workers)
        result.throughput_with_lb.append(
            _run(world_lb, workers, ticks, load_balance=True, ticks_per_epoch=ticks_per_epoch)
        )
        result.throughput_without_lb.append(
            _run(world_no_lb, workers, ticks, load_balance=False, ticks_per_epoch=ticks_per_epoch)
        )
    return result
