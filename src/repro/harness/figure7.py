"""Figure 7 — fish scale-up with and without load balancing.

The fish school starts concentrated in a small patch of the (large) ocean and
two groups of informed individuals pull it in opposite directions.  Without
load balancing only the few workers whose strips contain fish do any work, so
throughput stops growing with the cluster size; with the one-dimensional load
balancer the strips are re-drawn each epoch to hold roughly the same number
of fish and throughput keeps growing nearly linearly — the behaviour reported
in the paper.

:func:`run_figure7` uses the hand-written Couzin fish model;
:func:`run_figure7_brasil` draws the same comparison from the paper's
fish-school BRASIL script via :func:`repro.brasil.runner.run_script`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.harness.common import format_table
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


@dataclass
class Figure7Result:
    """Throughput per worker count, with and without load balancing."""

    ticks: int
    fish_per_worker: int
    worker_counts: list[int] = field(default_factory=list)
    throughput_with_lb: list[float] = field(default_factory=list)
    throughput_without_lb: list[float] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per cluster size."""
        return [
            {
                "workers": workers,
                "throughput_lb": with_lb,
                "throughput_no_lb": without_lb,
            }
            for workers, with_lb, without_lb in zip(
                self.worker_counts, self.throughput_with_lb, self.throughput_without_lb
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the two scale-up curves."""
        rows = [
            [row["workers"], row["throughput_lb"], row["throughput_no_lb"]]
            for row in self.rows()
        ]
        return format_table(
            ["Workers", "Throughput with LB", "Throughput without LB"],
            rows,
            title="Figure 7: Fish — scalability with and without load balancing",
        )


def _run(world, workers: int, ticks: int, load_balance: bool, ticks_per_epoch: int) -> float:
    config = BraceConfig(
        num_workers=workers,
        ticks_per_epoch=ticks_per_epoch,
        index="kdtree",
        check_visibility=False,
        load_balance=load_balance,
        load_balance_threshold=1.1,
    )
    with Simulation.from_agents(world, config=config) as session:
        return session.run(ticks).throughput()


def run_figure7(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 36),
    fish_per_worker: int = 60,
    ticks: int = 6,
    ticks_per_epoch: int = 2,
    seed: int = 41,
    parameters: CouzinParameters | None = None,
) -> Figure7Result:
    """Scale the school with the worker count, with and without load balancing."""
    parameters = parameters or CouzinParameters(seed_region=300.0)
    fish_class = make_fish_class(parameters)
    result = Figure7Result(ticks=ticks, fish_per_worker=fish_per_worker)
    for workers in worker_counts:
        num_fish = fish_per_worker * workers
        world_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        world_no_lb = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
        result.worker_counts.append(workers)
        result.throughput_with_lb.append(
            _run(world_lb, workers, ticks, load_balance=True, ticks_per_epoch=ticks_per_epoch)
        )
        result.throughput_without_lb.append(
            _run(world_no_lb, workers, ticks, load_balance=False, ticks_per_epoch=ticks_per_epoch)
        )
    return result


def run_figure7_brasil(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 36),
    fish_per_worker: int = 60,
    ticks: int = 6,
    ticks_per_epoch: int = 2,
    seed: int = 41,
    patch_radius: float = 10.0,
    ocean_half_width: float = 300.0,
    executor: str = "serial",
    max_workers: int | None = None,
) -> Figure7Result:
    """Figure 7 from BRASIL source: the fish-school script with/without LB.

    The school starts concentrated in a ``patch_radius`` patch of a much
    larger ocean, so without load balancing only a few strips do any work.
    Both curves run the *same* compiled script on identical initial states;
    only the load-balancer flag differs.
    """
    from repro.brasil.runner import run_script
    from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

    result = Figure7Result(ticks=ticks, fish_per_worker=fish_per_worker)
    bounds = ((-ocean_half_width, ocean_half_width), (-ocean_half_width, ocean_half_width))
    for workers in worker_counts:
        num_fish = fish_per_worker * workers
        rng = np.random.default_rng([seed, num_fish])
        initial_states = [
            {
                "x": float(rng.uniform(-patch_radius, patch_radius)),
                "y": float(rng.uniform(-patch_radius, patch_radius)),
                "vx": float(rng.uniform(-1.0, 1.0)),
                "vy": float(rng.uniform(-1.0, 1.0)),
            }
            for _ in range(num_fish)
        ]

        def throughput(load_balance: bool) -> float:
            config = BraceConfig(
                num_workers=workers,
                ticks_per_epoch=ticks_per_epoch,
                check_visibility=False,
                load_balance=load_balance,
                load_balance_threshold=1.1,
                executor=executor,
                max_workers=max_workers,
            )
            run = run_script(
                FISH_SCHOOL_SCRIPT,
                config,
                ticks=ticks,
                initial_states=initial_states,
                bounds=bounds,
                seed=seed,
            )
            return run.throughput()

        result.worker_counts.append(workers)
        result.throughput_with_lb.append(throughput(load_balance=True))
        result.throughput_without_lb.append(throughput(load_balance=False))
    return result
