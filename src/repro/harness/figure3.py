"""Figure 3 — traffic single-node performance: indexing vs segment length.

Three series, exactly as in the paper:

* **MITSIM** — the hand-coded baseline with per-lane nearest-neighbour
  arrays (the fastest single-node implementation);
* **BRACE - no indexing** — the agent framework with the nested-loop join
  (every vehicle scans every other vehicle): quadratic in the number of
  vehicles, i.e. in the segment length;
* **BRACE - indexing** — the agent framework with the k-d tree converting
  the neighbour enumeration into an orthogonal range query: log-linear.

Total simulation time (wall-clock seconds) is reported per segment length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.mitsim import HandCodedTrafficSimulator
from repro.core.engine import SequentialEngine
from repro.harness.common import format_table
from repro.simulations.traffic import TrafficParameters, build_traffic_world


@dataclass
class Figure3Result:
    """Total simulation time per segment length for the three series."""

    ticks: int
    segment_lengths: list[float] = field(default_factory=list)
    mitsim_seconds: list[float] = field(default_factory=list)
    no_index_seconds: list[float] = field(default_factory=list)
    index_seconds: list[float] = field(default_factory=list)

    def rows(self) -> list[dict[str, float]]:
        """One row per segment length."""
        return [
            {
                "segment_length": length,
                "mitsim_seconds": mitsim,
                "brace_no_index_seconds": no_index,
                "brace_index_seconds": indexed,
            }
            for length, mitsim, no_index, indexed in zip(
                self.segment_lengths, self.mitsim_seconds, self.no_index_seconds, self.index_seconds
            )
        ]

    def format_table(self) -> str:
        """Text rendering of the three curves."""
        rows = [
            [row["segment_length"], row["mitsim_seconds"], row["brace_no_index_seconds"], row["brace_index_seconds"]]
            for row in self.rows()
        ]
        return format_table(
            ["Segment length", "MITSIM [s]", "BRACE no-indexing [s]", "BRACE indexing [s]"],
            rows,
            title="Figure 3: Traffic — total simulation time vs segment length",
        )


def run_figure3(
    segment_lengths: tuple[float, ...] = (500.0, 1000.0, 2000.0, 4000.0),
    ticks: int = 10,
    seed: int = 11,
    base_parameters: TrafficParameters | None = None,
    spatial_backend: str | None = "python",
) -> Figure3Result:
    """Sweep the segment length and time the three implementations.

    ``spatial_backend`` selects how the *indexed* series executes its joins;
    the default is the paper-faithful interpreted path, and ``--backend
    vectorized`` from the CLI re-runs the series on the columnar kernels.
    The un-indexed series is always the interpreted quadratic baseline.
    """
    base_parameters = base_parameters or TrafficParameters()
    result = Figure3Result(ticks=ticks)
    for segment_length in segment_lengths:
        parameters = base_parameters.scaled_to(segment_length)
        result.segment_lengths.append(segment_length)

        baseline = HandCodedTrafficSimulator(parameters, seed=seed)
        baseline.populate()
        result.mitsim_seconds.append(baseline.run(ticks))

        world = build_traffic_world(parameters, seed=seed)
        engine = SequentialEngine(world, index=None, check_visibility=False)
        start = time.perf_counter()
        engine.run(ticks)
        result.no_index_seconds.append(time.perf_counter() - start)

        world = build_traffic_world(parameters, seed=seed)
        engine = SequentialEngine(
            world, index="kdtree", check_visibility=False, spatial_backend=spatial_backend
        )
        start = time.perf_counter()
        engine.run(ticks)
        result.index_seconds.append(time.perf_counter() - start)
    return result
