"""Executable versions of the formal map/reduce functions of Appendix A.

These jobs run a behavioral simulation tick-by-tick *through the generic
MapReduce engine*, following the formal model literally:

* the map task of tick ``t`` applies the update phase of tick ``t - 1`` and
  replicates each agent to every partition whose visible region contains it
  (Figure 9 / 10, ``map^t``);
* the (first) reduce task executes the query phase for the agents its
  partition owns (``reduce^t_1``);
* with non-local effects, a second reduce pass merges the partially
  aggregated effect values of all replicas of an agent at its owning
  partition (``reduce^t_2``); the identity second map task is elided.

They exist to cross-check the optimized BRACE runtime: both must agree with
the sequential reference engine.  The formal jobs only support fixed
populations (no births/deaths), matching the scope of Appendix A.

The map and reduce functions are small picklable callables (not closures),
so the jobs run unchanged on every executor backend — including the
:class:`~repro.mapreduce.executor.ProcessExecutor`, provided the agent class
itself is picklable (a module-level class, such as the canonical traffic
``Vehicle``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.agent import Agent
from repro.core.context import QueryContext, UpdateContext
from repro.core.errors import MapReduceError
from repro.core.phase import Phase, phase
from repro.mapreduce.engine import (
    IterativeMapReduce,
    MapReduceJob,
    MapReduceReduceJob,
)
from repro.mapreduce.executor import Executor
from repro.mapreduce.types import KeyValue
from repro.spatial.partitioning import SpatialPartitioning


def _visibility_for_replication(agent: Agent, partitioning: SpatialPartitioning) -> list[int]:
    """Partitions that must receive a replica of ``agent``."""
    radii = agent.visibility_radii()
    if not radii or any(radius is None for radius in radii):
        # Unbounded visibility: every partition needs the agent.
        return [part.partition_id for part in partitioning.partitions()]
    return partitioning.replication_targets(agent.position(), list(radii))


@dataclass(frozen=True)
class _JobSpec:
    """The picklable context shared by every map/reduce task of a job."""

    partitioning: SpatialPartitioning
    seed: int
    index: str | None
    cell_size: float | None
    check_visibility: bool
    spatial_backend: str | None = None


def _apply_update(agent: Agent, update_tick: int, seed: int) -> None:
    """Run the update phase of ``update_tick`` on one agent (fixed population)."""
    update_context = UpdateContext(tick=update_tick, seed=seed)
    with phase(Phase.UPDATE):
        agent._updating = True
        try:
            agent.update(update_context)
        finally:
            agent._updating = False
    if update_context.spawn_requests or update_context.kill_requests:
        raise MapReduceError(
            "the Appendix A simulation jobs do not support births/deaths; "
            "use the BRACE runtime for models with dynamic populations"
        )


def _run_query_phase(
    spec: _JobSpec, partition_id: int, agents: Sequence[Agent], tick: int
) -> list[Agent]:
    """Run the query phase for the agents owned by ``partition_id``."""
    context = QueryContext(
        agents,
        tick=tick,
        seed=spec.seed,
        index=spec.index,
        cell_size=spec.cell_size,
        check_visibility=spec.check_visibility,
        spatial_backend=spec.spatial_backend,
    )
    owned = [
        agent
        for agent in agents
        if spec.partitioning.partition_of(agent.position()) == partition_id
    ]
    with phase(Phase.QUERY):
        for agent in owned:
            agent.query(context)
    return owned


@dataclass(frozen=True)
class _DistributeMap:
    """``map^t``: the update phase of tick ``t - 1`` plus replica distribution."""

    spec: _JobSpec
    tick: int

    def __call__(self, _key: Any, agent: Agent) -> Iterable[tuple[int, Agent]]:
        if self.tick > 0:
            _apply_update(agent, self.tick - 1, self.spec.seed)
        agent.reset_effects()
        return [
            (partition_id, agent.clone())
            for partition_id in _visibility_for_replication(agent, self.spec.partitioning)
        ]


@dataclass(frozen=True)
class _LocalEffectReduce:
    """``reduce^t_1`` of Figure 9: query phase, emitting only owned agents."""

    spec: _JobSpec
    tick: int

    def __call__(self, partition_id: int, agents: list[Agent]):
        owned = _run_query_phase(self.spec, partition_id, agents, self.tick)
        return [(partition_id, agent) for agent in owned]


@dataclass(frozen=True)
class _NonLocalEffectReduce1:
    """``reduce^t_1`` of Figure 10: query phase, routing partials to owners."""

    spec: _JobSpec
    tick: int

    def __call__(self, partition_id: int, agents: list[Agent]):
        _run_query_phase(self.spec, partition_id, agents, self.tick)
        output = []
        for agent in agents:
            owner = self.spec.partitioning.partition_of(agent.position())
            if owner == partition_id or agent.touched_effect_partials():
                # Route the copy (state + partial effects) to its owner.
                output.append((owner, agent))
        return output


@dataclass(frozen=True)
class _NonLocalEffectReduce2:
    """``reduce^t_2`` of Figure 10: merge all partials of an agent at its owner."""

    def __call__(self, partition_id: int, agents: list[Agent]):
        by_oid: dict[Any, list[Agent]] = {}
        for agent in agents:
            by_oid.setdefault(agent.agent_id, []).append(agent)
        output = []
        for agent_id in sorted(by_oid, key=repr):
            copies = by_oid[agent_id]
            base = copies[0].clone()
            base.reset_effects()
            for copy in copies:
                base.merge_effect_partials(copy.touched_effect_partials())
            output.append((partition_id, base))
        return output


class _SimulationJobBase:
    """Shared machinery of the local-effect and non-local-effect jobs."""

    def __init__(
        self,
        partitioning: SpatialPartitioning,
        seed: int = 0,
        index: str | None = "kdtree",
        cell_size: float | None = None,
        check_visibility: bool = True,
        executor: Executor | str | None = None,
        spatial_backend: str | None = None,
    ):
        self.partitioning = partitioning
        self.seed = int(seed)
        self.index = index
        self.cell_size = cell_size
        self.check_visibility = check_visibility
        self.spatial_backend = spatial_backend
        self.engine = IterativeMapReduce(executor=executor)

    @property
    def spec(self) -> _JobSpec:
        """The picklable task context for this job's configuration."""
        return _JobSpec(
            partitioning=self.partitioning,
            seed=self.seed,
            index=self.index,
            cell_size=self.cell_size,
            check_visibility=self.check_visibility,
            spatial_backend=self.spatial_backend,
        )

    # -- shared driver ----------------------------------------------------
    def initial_pairs(self, agents: Iterable[Agent]) -> list[KeyValue]:
        """Wrap the initial agent population as input key-value pairs."""
        return [KeyValue(agent.agent_id, agent.clone()) for agent in agents]

    def run(self, agents: Iterable[Agent], ticks: int) -> list[Agent]:
        """Simulate ``ticks`` ticks and return the final agent states.

        The returned agents are fresh clones sorted by agent id; the input
        agents are never mutated.
        """
        pairs = self.initial_pairs(agents)
        if ticks == 0:
            return sorted((pair.value for pair in pairs), key=lambda a: repr(a.agent_id))
        output = self.engine.run(self.job_for_iteration, pairs, ticks)
        # The last iteration ran query^T but not update^T; apply it now so the
        # result matches ``ticks`` full ticks of the sequential engine.
        finals: dict[Any, Agent] = {}
        for pair in output:
            agent = pair.value
            if agent.agent_id in finals:
                continue
            _apply_update(agent, ticks - 1, self.seed)
            finals[agent.agent_id] = agent
        return [finals[agent_id] for agent_id in sorted(finals, key=repr)]

    def job_for_iteration(self, iteration: int):
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release pooled executor workers, if any."""
        self.engine.engine.shutdown()


class LocalEffectSimulationJob(_SimulationJobBase):
    """Figure 9: simulations whose effect assignments are all local."""

    def job_for_iteration(self, iteration: int) -> MapReduceJob:
        """Build the single-reduce job for tick ``iteration``."""
        spec = self.spec
        return MapReduceJob(
            _DistributeMap(spec, iteration),
            _LocalEffectReduce(spec, iteration),
            name=f"tick-{iteration}",
        )


class NonLocalEffectSimulationJob(_SimulationJobBase):
    """Figure 10: simulations with non-local effect assignments.

    The first reduce computes partial effect aggregates at each partition;
    the second reduce merges all partials of an agent at its owning
    partition.
    """

    def job_for_iteration(self, iteration: int) -> MapReduceReduceJob:
        """Build the map–reduce–reduce job for tick ``iteration``."""
        spec = self.spec
        return MapReduceReduceJob(
            _DistributeMap(spec, iteration),
            _NonLocalEffectReduce1(spec, iteration),
            _NonLocalEffectReduce2(),
            name=f"tick-{iteration}",
        )
