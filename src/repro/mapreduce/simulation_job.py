"""Executable versions of the formal map/reduce functions of Appendix A.

These jobs run a behavioral simulation tick-by-tick *through the generic
MapReduce engine*, following the formal model literally:

* the map task of tick ``t`` applies the update phase of tick ``t - 1`` and
  replicates each agent to every partition whose visible region contains it
  (Figure 9 / 10, ``map^t``);
* the (first) reduce task executes the query phase for the agents its
  partition owns (``reduce^t_1``);
* with non-local effects, a second reduce pass merges the partially
  aggregated effect values of all replicas of an agent at its owning
  partition (``reduce^t_2``); the identity second map task is elided.

They exist to cross-check the optimized BRACE runtime: both must agree with
the sequential reference engine.  The formal jobs only support fixed
populations (no births/deaths), matching the scope of Appendix A.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.agent import Agent
from repro.core.context import QueryContext, UpdateContext
from repro.core.errors import MapReduceError
from repro.core.phase import Phase, phase
from repro.mapreduce.engine import (
    IterativeMapReduce,
    MapReduceJob,
    MapReduceReduceJob,
)
from repro.mapreduce.types import KeyValue
from repro.spatial.partitioning import SpatialPartitioning


def _visibility_for_replication(agent: Agent, partitioning: SpatialPartitioning) -> list[int]:
    """Partitions that must receive a replica of ``agent``."""
    radii = agent.visibility_radii()
    if not radii or any(radius is None for radius in radii):
        # Unbounded visibility: every partition needs the agent.
        return [part.partition_id for part in partitioning.partitions()]
    return partitioning.replication_targets(agent.position(), list(radii))


class _SimulationJobBase:
    """Shared machinery of the local-effect and non-local-effect jobs."""

    def __init__(
        self,
        partitioning: SpatialPartitioning,
        seed: int = 0,
        index: str | None = "kdtree",
        cell_size: float | None = None,
        check_visibility: bool = True,
    ):
        self.partitioning = partitioning
        self.seed = int(seed)
        self.index = index
        self.cell_size = cell_size
        self.check_visibility = check_visibility
        self.engine = IterativeMapReduce()

    # -- map task -------------------------------------------------------
    def _map_fn(self, tick: int):
        """Build ``map^t``: update phase of tick ``t - 1`` plus distribution."""

        def map_fn(_key: Any, agent: Agent) -> Iterable[tuple[int, Agent]]:
            if tick > 0:
                self._apply_update(agent, tick - 1)
            agent.reset_effects()
            for partition_id in _visibility_for_replication(agent, self.partitioning):
                yield (partition_id, agent.clone())

        return map_fn

    def _apply_update(self, agent: Agent, update_tick: int) -> None:
        update_context = UpdateContext(tick=update_tick, seed=self.seed)
        with phase(Phase.UPDATE):
            agent._updating = True
            try:
                agent.update(update_context)
            finally:
                agent._updating = False
        if update_context.spawn_requests or update_context.kill_requests:
            raise MapReduceError(
                "the Appendix A simulation jobs do not support births/deaths; "
                "use the BRACE runtime for models with dynamic populations"
            )

    # -- query phase ----------------------------------------------------
    def _run_query_phase(self, partition_id: int, agents: Sequence[Agent], tick: int) -> list[Agent]:
        """Run the query phase for the agents owned by ``partition_id``."""
        context = QueryContext(
            agents,
            tick=tick,
            seed=self.seed,
            index=self.index,
            cell_size=self.cell_size,
            check_visibility=self.check_visibility,
        )
        owned = [
            agent
            for agent in agents
            if self.partitioning.partition_of(agent.position()) == partition_id
        ]
        with phase(Phase.QUERY):
            for agent in owned:
                agent.query(context)
        return owned

    # -- shared driver ----------------------------------------------------
    def initial_pairs(self, agents: Iterable[Agent]) -> list[KeyValue]:
        """Wrap the initial agent population as input key-value pairs."""
        return [KeyValue(agent.agent_id, agent.clone()) for agent in agents]

    def run(self, agents: Iterable[Agent], ticks: int) -> list[Agent]:
        """Simulate ``ticks`` ticks and return the final agent states.

        The returned agents are fresh clones sorted by agent id; the input
        agents are never mutated.
        """
        pairs = self.initial_pairs(agents)
        if ticks == 0:
            return sorted((pair.value for pair in pairs), key=lambda a: repr(a.agent_id))
        output = self.engine.run(self.job_for_iteration, pairs, ticks)
        # The last iteration ran query^T but not update^T; apply it now so the
        # result matches ``ticks`` full ticks of the sequential engine.
        finals: dict[Any, Agent] = {}
        for pair in output:
            agent = pair.value
            if agent.agent_id in finals:
                continue
            self._apply_update(agent, ticks - 1)
            finals[agent.agent_id] = agent
        return [finals[agent_id] for agent_id in sorted(finals, key=repr)]

    def job_for_iteration(self, iteration: int):
        raise NotImplementedError


class LocalEffectSimulationJob(_SimulationJobBase):
    """Figure 9: simulations whose effect assignments are all local."""

    def job_for_iteration(self, iteration: int) -> MapReduceJob:
        """Build the single-reduce job for tick ``iteration``."""

        def reduce_fn(partition_id: int, agents: list[Agent]):
            owned = self._run_query_phase(partition_id, agents, iteration)
            for agent in owned:
                yield (partition_id, agent)

        return MapReduceJob(self._map_fn(iteration), reduce_fn, name=f"tick-{iteration}")


class NonLocalEffectSimulationJob(_SimulationJobBase):
    """Figure 10: simulations with non-local effect assignments.

    The first reduce computes partial effect aggregates at each partition;
    the second reduce merges all partials of an agent at its owning
    partition.
    """

    def job_for_iteration(self, iteration: int) -> MapReduceReduceJob:
        """Build the map–reduce–reduce job for tick ``iteration``."""

        def reduce1_fn(partition_id: int, agents: list[Agent]):
            self._run_query_phase(partition_id, agents, iteration)
            for agent in agents:
                owner = self.partitioning.partition_of(agent.position())
                if owner == partition_id or agent.touched_effect_partials():
                    # Route the copy (state + partial effects) to its owner.
                    yield (owner, agent)

        def reduce2_fn(partition_id: int, agents: list[Agent]):
            by_oid: dict[Any, list[Agent]] = {}
            for agent in agents:
                by_oid.setdefault(agent.agent_id, []).append(agent)
            for agent_id in sorted(by_oid, key=repr):
                copies = by_oid[agent_id]
                base = copies[0].clone()
                base.reset_effects()
                for copy in copies:
                    base.merge_effect_partials(copy.touched_effect_partials())
                yield (partition_id, base)

        return MapReduceReduceJob(
            self._map_fn(iteration), reduce1_fn, reduce2_fn, name=f"tick-{iteration}"
        )
