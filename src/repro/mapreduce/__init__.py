"""A generic in-memory, iterative MapReduce engine.

This package is the MapReduce substrate the paper builds on: a faithful,
dependency-free implementation of the programming model (map, shuffle,
reduce), extended with

* **iteration** — the output of the reduce step can be fed into the next map
  step (``IterativeMapReduce``), matching the paper's iterated formulation;
* **map–reduce–reduce** — the second reduce pass used when simulations have
  non-local effect assignments (the identity second map task of Table 1 is
  elided, as the paper notes it can be);
* **simulation jobs** — executable versions of the formal map/reduce
  functions of Appendix A (:mod:`repro.mapreduce.simulation_job`), used to
  cross-check the optimized BRACE runtime.
"""

from repro.mapreduce.types import KeyValue
from repro.mapreduce.executor import (
    Executor,
    SerialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    TaskResult,
    make_executor,
    stable_hash_partition,
)
from repro.mapreduce.engine import (
    MapReduceEngine,
    MapReduceJob,
    MapReduceReduceJob,
    IterativeMapReduce,
    JobStatistics,
    TaskStatistics,
)
from repro.mapreduce.simulation_job import (
    LocalEffectSimulationJob,
    NonLocalEffectSimulationJob,
)

__all__ = [
    "KeyValue",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskResult",
    "make_executor",
    "stable_hash_partition",
    "MapReduceEngine",
    "MapReduceJob",
    "MapReduceReduceJob",
    "IterativeMapReduce",
    "JobStatistics",
    "TaskStatistics",
    "LocalEffectSimulationJob",
    "NonLocalEffectSimulationJob",
]
