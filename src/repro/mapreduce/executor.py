"""Pluggable parallel execution backends for the MapReduce engine.

The paper's central performance claim is that behavioral simulations scale
near-linearly when expressed as iterated map-reduce-reduce passes.  The
engine in :mod:`repro.mapreduce.engine` expresses the passes; this module
supplies the *executors* that actually run the map and reduce tasks:

* :class:`SerialExecutor` — runs every task inline in the calling thread
  (the original single-process behavior, and the default);
* :class:`ThreadExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  backend; tasks share the interpreter, so it preserves in-place mutation
  semantics but is limited by the GIL for pure-Python work;
* :class:`ProcessExecutor` — a
  :class:`concurrent.futures.ProcessPoolExecutor` backend; tasks and their
  inputs are pickled to worker processes, so CPU-bound map/reduce work runs
  genuinely in parallel.

All three backends share one contract, :meth:`Executor.run_tasks`: execute a
list of zero-argument callables and return one :class:`TaskResult` per task,
*in submission order*, with per-task wall-clock timing measured where the
task ran.  Keeping results in submission order is what lets the engine
produce bit-identical output regardless of the backend.

Beyond the stateless contract, every backend also supports **resident
shards** — durable, executor-hosted state with shard-affine dispatch:

* :meth:`Executor.init_shards` builds one state object per shard from a
  picklable factory;
* :meth:`Executor.run_sharded_tasks` runs ``fn(state, payload)`` calls *where
  each shard lives* (inline for the serial backend, on the shared pool for
  the thread backend, and pinned to a dedicated pool process for the process
  backend), returning one :class:`ShardTaskResult` per task in submission
  order;
* :meth:`Executor.teardown_shards` releases the states (and, for the process
  backend, the host processes).

The process backend pre-pickles every payload and result exactly once, so
:class:`ShardTaskResult` carries the *measured* bytes that crossed the
process boundary — the number the BRACE runtime reports as real IPC traffic
per tick.  This is the substrate for the paper's collocation argument: a
shard's agents stay resident in its host process across ticks, and only
deltas (migrations, boundary replicas, effect partials) are shipped.

The module also provides :func:`stable_hash_partition`, a deterministic
(process-independent) hash partitioner used for the parallel shuffle.
Python's builtin ``hash`` is salted per interpreter for strings, so it would
assign keys to different reduce partitions in different worker processes;
CRC-32 over ``repr(key)`` is stable everywhere.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from repro.core.errors import ExecutorError

#: Executor kinds accepted by :func:`make_executor` and ``BraceConfig.executor``.
EXECUTOR_KINDS = ("serial", "thread", "process", "cluster")


def stable_hash_partition(key: Hashable, num_partitions: int) -> int:
    """Deterministically assign ``key`` to one of ``num_partitions`` buckets.

    Uses CRC-32 of ``repr(key)`` so the assignment is identical across
    interpreter instances and worker processes (unlike the salted builtin
    ``hash``).
    """
    if num_partitions <= 1:
        return 0
    data = repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) % num_partitions


def default_worker_count() -> int:
    """A sensible default parallelism level: the machine's CPU count."""
    return os.cpu_count() or 1


def available_parallelism() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Scheduling decisions like comm/compute overlap key off this rather than
    the raw CPU count: inside a restricted cpuset the extra concurrency only
    buys context switches.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def wall_clock_imbalance(seconds: Sequence[float]) -> float:
    """Max-over-mean ratio of per-task wall-clock times (1.0 = perfectly even).

    The load-skew summary shared by the MapReduce task statistics and the
    BRACE per-worker phase statistics.
    """
    if not seconds:
        return 1.0
    mean = sum(seconds) / len(seconds)
    if mean <= 0.0:
        return 1.0
    return max(seconds) / mean


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one executed task."""

    index: int          #: Position of the task in the submitted batch.
    value: Any          #: The task's return value.
    wall_seconds: float  #: Wall-clock time spent running the task body.


@dataclass(frozen=True)
class ShardTaskResult:
    """Outcome of one shard-affine task (:meth:`Executor.run_sharded_tasks`).

    ``payload_bytes``/``result_bytes`` are the *measured* encoded sizes of
    what crossed a process boundary; both are 0 on backends that share the
    caller's memory, unless a codec was supplied (forced columnar framing on
    an in-process backend), in which case they are the measured frame sizes
    of the in-process round trip.

    ``serialize_seconds``/``transport_seconds`` split the non-compute IPC
    cost: time spent encoding/decoding payloads and results (both ends) and
    time spent moving the encoded bytes (shared-memory parking/mapping; the
    pool pipe's copy cost is not separately observable and folds into wait
    time at the caller).
    """

    shard_id: int        #: Shard the task ran against.
    value: Any           #: The task function's return value.
    wall_seconds: float  #: Wall-clock time of the task body, where it ran.
    payload_bytes: int = 0  #: Encoded payload size shipped to the shard.
    result_bytes: int = 0   #: Encoded result size shipped back.
    serialize_seconds: float = 0.0  #: Encode + decode time, both ends.
    transport_seconds: float = 0.0  #: Shared-memory write/map time, both ends.


def _timed_call(task: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``task`` and measure its wall-clock time where it executes.

    Module-level so the :class:`ProcessExecutor` can pickle it; the timing is
    taken inside the worker, excluding queueing and serialization overhead.
    """
    start = time.perf_counter()
    value = task()
    return value, time.perf_counter() - start


def _timed_shard_call(fn: Callable[[Any, Any], Any], state: Any, payload: Any) -> tuple[Any, float]:
    """Run one shard task and measure the wall-clock time of its body."""
    start = time.perf_counter()
    value = fn(state, payload)
    return value, time.perf_counter() - start


def _codec_shard_call(
    codec, shard_id: int, fn: Callable[[Any, Any], Any], state: Any, payload: Any
) -> ShardTaskResult:
    """Run one shard task through a full in-process codec round trip.

    The memory-sharing backends use this when a codec is forced on them:
    the payload and result are encoded and decoded exactly as they would be
    across a process boundary (same bytes, same object copies), which is how
    the columnar wire format is conformance-tested without pool overhead —
    and why the returned byte counts are real measurements, not zeros.
    """
    start = time.perf_counter()
    decoded_payload, payload_bytes = codec.roundtrip(payload)
    serialize_seconds = time.perf_counter() - start
    value, seconds = _timed_shard_call(fn, state, decoded_payload)
    start = time.perf_counter()
    result, result_bytes = codec.roundtrip(value)
    serialize_seconds += time.perf_counter() - start
    return ShardTaskResult(
        shard_id,
        result,
        seconds,
        payload_bytes=payload_bytes,
        result_bytes=result_bytes,
        serialize_seconds=serialize_seconds,
    )


def _is_pickling_error(error: BaseException) -> bool:
    """Whether an exception actually stems from (un)pickling.

    Serialization failures surface as :class:`pickle.PickleError` for
    module-level objects, ``AttributeError`` for locally defined
    functions/classes and ``TypeError`` for unpicklable values (locks,
    generators...).  Only errors that *talk about* pickling are classified,
    so a genuine ``AttributeError``/``TypeError`` raised inside a task is
    never swallowed.
    """
    if isinstance(error, pickle.PickleError):
        return True
    if isinstance(error, (AttributeError, TypeError)):
        return "pickle" in str(error).lower()
    return False


class Executor:
    """Base class of the execution backends.

    Subclasses implement :meth:`run_tasks`; everything else (context-manager
    protocol, resident-shard hosting, idempotent shutdown) is shared.  The
    default shard implementation keeps states in the caller's process, which
    is correct for every memory-sharing backend; :class:`ProcessExecutor`
    overrides it with real per-process residency.
    """

    #: Short name used in statistics and configuration ("serial", ...).
    name: str = "abstract"
    #: True when tasks run in the caller's address space, so in-place
    #: mutation of shared objects is visible to the caller.  The BRACE
    #: runtime uses this to decide between in-place and message-passing
    #: phase execution.
    shares_memory: bool = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and int(max_workers) < 1:
            raise ExecutorError("max_workers must be at least 1 (or None for the CPU count)")
        self.max_workers = int(max_workers) if max_workers is not None else default_worker_count()
        self._shards: dict[int, Any] | None = None

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        """Execute every task and return per-task results in submission order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Resident shards
    # ------------------------------------------------------------------
    def init_shards(
        self,
        factory: Callable[[int, Any], Any],
        payloads: dict[int, Any],
        codec=None,
    ) -> None:
        """Create one durable shard state per entry of ``payloads``.

        ``factory(shard_id, payload)`` builds the state *where the shard will
        live*; on the process backend both the factory and the payload must
        be picklable.  Shards stay alive across :meth:`run_sharded_tasks`
        calls until :meth:`teardown_shards`.

        ``codec`` (a :class:`repro.ipc.frames.ColumnarCodec`) selects the
        columnar wire format for seed payloads on backends that cross a
        process boundary; memory-sharing backends hand the payloads to the
        factory directly and ignore it.
        """
        if self._shards is not None:
            raise ExecutorError(
                "resident shards are already initialized; call teardown_shards() first"
            )
        self._shards = {
            shard_id: factory(shard_id, payloads[shard_id]) for shard_id in sorted(payloads)
        }

    def has_shards(self) -> bool:
        """True when resident shards are currently initialized."""
        return self._shards is not None

    def run_sharded_tasks(
        self,
        tasks: Sequence[tuple[int, Callable[[Any, Any], Any], Any]],
        codec=None,
        overlap: bool = False,
    ) -> list[ShardTaskResult]:
        """Run ``(shard_id, fn, payload)`` tasks against their resident states.

        Each ``fn(state, payload)`` executes where its shard lives; results
        come back in submission order.  Tasks addressing the *same* shard
        within one batch run sequentially in submission order (shard state is
        never mutated concurrently); tasks addressing different shards may
        run in parallel.

        ``codec`` selects the columnar wire format for payloads and results
        (see :class:`repro.ipc.frames.ColumnarCodec`).  Memory-sharing
        backends honor it by round-tripping every payload and result through
        the codec *in process* — same bytes, same object copies as a real
        boundary crossing, measured and reported — which is how the wire
        format is conformance-tested without pool overhead.  ``overlap``
        lets the process backend ship each payload as soon as it is encoded
        so hosts compute while later payloads are still serializing; it is a
        scheduling hint only and never changes results, so memory-sharing
        backends ignore it.
        """
        states = self._require_shards(tasks)
        results: list[ShardTaskResult | None] = [None] * len(tasks)
        for index, (shard_id, fn, payload) in enumerate(tasks):
            if codec is not None:
                results[index] = _codec_shard_call(
                    codec, shard_id, fn, states[shard_id], payload
                )
            else:
                value, seconds = _timed_shard_call(fn, states[shard_id], payload)
                results[index] = ShardTaskResult(shard_id, value, seconds)
        return results  # type: ignore[return-value]

    def teardown_shards(self) -> None:
        """Drop every resident shard state (idempotent)."""
        self._shards = None

    def _require_shards(self, tasks) -> dict[int, Any]:
        """The shard-state map, validating that every addressed shard exists."""
        if self._shards is None:
            raise ExecutorError("no resident shards are initialized; call init_shards() first")
        for shard_id, _fn, _payload in tasks:
            if shard_id not in self._shards:
                raise ExecutorError(f"unknown resident shard {shard_id!r}")
        return self._shards

    def shutdown(self) -> None:
        """Release pooled workers and resident shards (idempotent)."""
        self.teardown_shards()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} max_workers={self.max_workers}>"


class SerialExecutor(Executor):
    """Runs every task inline in the calling thread (the default backend)."""

    name = "serial"
    shares_memory = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        results = []
        for index, task in enumerate(tasks):
            value, seconds = _timed_call(task)
            results.append(TaskResult(index, value, seconds))
        return results


class _PooledExecutor(Executor):
    """Shared machinery of the thread and process backends (lazy pool reuse)."""

    shares_memory = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().shutdown()

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        if not tasks:
            return []
        if len(tasks) == 1 and self.shares_memory:
            # One thread-pool task cannot overlap with anything and has the
            # same semantics inline, so skip the pool.  The process backend
            # must NOT shortcut: its pickling contract (and isolation) has to
            # hold for one task exactly as for many.
            value, seconds = _timed_call(tasks[0])
            return [TaskResult(0, value, seconds)]
        pool = self._ensure_pool()
        futures: list[Future] = [pool.submit(_timed_call, task) for task in tasks]
        wait(futures, return_when=FIRST_EXCEPTION)
        results = []
        for index, future in enumerate(futures):
            try:
                value, seconds = future.result()
            # A worker that dies deserializing a task (e.g. the task's
            # function lives in a __main__ the child cannot re-import) takes
            # the whole pool down.  Drop the broken pool so the next call
            # starts fresh, and explain the likely cause.
            except BrokenProcessPool as error:
                self._pool = None
                raise ExecutorError(
                    f"a {self.name} executor worker died while receiving a task "
                    "(most often the task's function could not be re-imported in "
                    "the worker process — define map/reduce functions in an "
                    "importable module, not in __main__ or a REPL). "
                    f"Original error: {error}"
                ) from error
            # Only the process backend pickles tasks, and only errors that
            # actually stem from pickling are classified (see
            # _is_pickling_error), so a genuine AttributeError/TypeError
            # raised *inside* a task passes through.
            except (pickle.PickleError, AttributeError, TypeError) as error:
                if self.shares_memory or not _is_pickling_error(error):
                    raise
                for pending in futures:
                    pending.cancel()
                raise ExecutorError(
                    f"the {self.name} executor could not serialize a task: {error}. "
                    "Map/reduce functions and the records flowing through them must "
                    "be picklable (module-level functions or classes); use the "
                    "serial or thread executor for closures and dynamic classes."
                ) from error
            results.append(TaskResult(index, value, seconds))
        return results


class ThreadExecutor(_PooledExecutor):
    """Runs tasks on a shared :class:`ThreadPoolExecutor`.

    Preserves in-place mutation semantics (tasks see the caller's objects),
    which makes it a drop-in parallel backend for the BRACE worker phases.
    Pure-Python work is GIL-bound, so expect overlap rather than speedup
    unless tasks release the GIL (NumPy kernels, I/O).
    """

    name = "thread"
    shares_memory = True

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="mapreduce"
        )

    def run_sharded_tasks(
        self,
        tasks: Sequence[tuple[int, Callable[[Any, Any], Any], Any]],
        codec=None,
        overlap: bool = False,
    ) -> list[ShardTaskResult]:
        """Run shard tasks on the thread pool, one serialized chain per shard.

        Grouping by shard keeps a shard's state single-threaded while
        distinct shards overlap, matching the process backend's concurrency
        contract without pickling anything.  A forced ``codec`` round-trips
        payloads and results in process, exactly like the serial backend.
        """
        states = self._require_shards(tasks)
        if not tasks:
            return []
        groups: dict[int, list[tuple[int, Callable, Any]]] = {}
        for index, (shard_id, fn, payload) in enumerate(tasks):
            groups.setdefault(shard_id, []).append((index, fn, payload))

        def run_group(shard_id: int, items):
            state = states[shard_id]
            out = []
            for index, fn, payload in items:
                if codec is not None:
                    result = _codec_shard_call(codec, shard_id, fn, state, payload)
                else:
                    value, seconds = _timed_shard_call(fn, state, payload)
                    result = ShardTaskResult(shard_id, value, seconds)
                out.append((index, result))
            return out

        pool = self._ensure_pool()
        futures = [
            pool.submit(run_group, shard_id, items) for shard_id, items in sorted(groups.items())
        ]
        wait(futures, return_when=FIRST_EXCEPTION)
        results: list[ShardTaskResult | None] = [None] * len(tasks)
        for future in futures:
            for index, result in future.result():
                results[index] = result
        return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Resident-shard host machinery (runs inside the process backend's workers).
# ---------------------------------------------------------------------------

#: Per-process registry of resident shard states, keyed by shard id.  Each
#: host process of a :class:`ProcessExecutor` owns a disjoint subset of the
#: shards; the registry lives for the lifetime of the host process, which is
#: exactly what makes the shards "resident".
_RESIDENT_SHARD_STATES: dict[int, Any] = {}


def _host_init_shards(items: list, codec=None) -> int:
    """Build shard states inside a host process; returns the host's pid.

    ``items`` is a list of ``(shard_id, factory, payload_blob)`` with the
    payload pre-encoded by the driver (so serialization happens exactly once
    and its size can be measured there); ``codec`` names the wire format the
    blobs were encoded with (``None`` means plain pickle).
    """
    for shard_id, factory, blob in items:
        payload = codec.decode(blob) if codec is not None else pickle.loads(blob)
        _RESIDENT_SHARD_STATES[shard_id] = factory(shard_id, payload)
    return os.getpid()


def _host_run_shard_tasks(items: list) -> list:
    """Run ``(shard_id, fn, payload_blob)`` tasks against resident states.

    The legacy pickle wire path.  Returns one ``(result_blob, wall_seconds,
    codec_seconds)`` per item, in order; results are pickled here so the
    driver can measure the bytes coming back, and ``codec_seconds`` is the
    host-side share of (de)serialization time.
    """
    out = []
    for shard_id, fn, blob in items:
        state = _host_shard_state(shard_id)
        start = time.perf_counter()
        payload = pickle.loads(blob)
        codec_seconds = time.perf_counter() - start
        value, seconds = _timed_shard_call(fn, state, payload)
        start = time.perf_counter()
        result_blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        codec_seconds += time.perf_counter() - start
        out.append((result_blob, seconds, codec_seconds))
    return out


def _host_shard_state(shard_id: int):
    """The resident state for ``shard_id`` in this host process, or raise."""
    try:
        return _RESIDENT_SHARD_STATES[shard_id]
    except KeyError:
        raise ExecutorError(
            f"resident shard {shard_id!r} is not initialized in this host process"
        ) from None


def _host_run_framed_task(codec, shard_id: int, fn, frame, release_names, use_shm: bool):
    """Run one columnar-framed shard task inside its host process.

    ``frame`` is either a :class:`repro.ipc.transport.FrameToken` naming a
    driver-owned shared-memory segment or raw blob bytes (pipe fallback).
    ``release_names`` returns this host's *result* segments from earlier
    rounds to its pool — the driver piggybacks them on the next submission,
    which is what makes the segment lifecycle double-buffered.  Returns
    ``(result_ref, result_bytes, wall_seconds, codec_seconds, shm_seconds)``
    where ``result_ref`` is a token into this host's own segment pool when
    shared memory is usable, else the encoded blob itself.
    """
    from repro.ipc import transport as ipc_transport

    if release_names:
        ipc_transport.release_process_segments(release_names)
    state = _host_shard_state(shard_id)
    shm_seconds = 0.0
    start = time.perf_counter()
    if isinstance(frame, ipc_transport.FrameToken):
        view = ipc_transport.process_cache().view(frame)
        shm_seconds = time.perf_counter() - start
        start = time.perf_counter()
        try:
            payload = codec.decode(view)
        finally:
            view.release()
    else:
        payload = codec.decode(frame)
    codec_seconds = time.perf_counter() - start
    value, seconds = _timed_shard_call(fn, state, payload)
    start = time.perf_counter()
    blob = codec.encode(value)
    codec_seconds += time.perf_counter() - start
    result_ref = blob
    if use_shm and ipc_transport.shm_available():
        start = time.perf_counter()
        try:
            result_ref = ipc_transport.process_pool().write(blob)
        except OSError:  # no room in /dev/shm: the pipe still works
            result_ref = blob
        shm_seconds += time.perf_counter() - start
    return result_ref, len(blob), seconds, codec_seconds, shm_seconds


def _host_close_transport() -> int:
    """Tear down a host's shared-memory transport; returns the host's pid.

    Runs as the last task on each host before executor teardown so the
    host's own result segments are unlinked by their creating process.
    """
    from repro.ipc import transport as ipc_transport

    ipc_transport.close_process_transport()
    return os.getpid()


class ProcessExecutor(_PooledExecutor):
    """Runs tasks on a shared :class:`ProcessPoolExecutor`.

    Tasks, their inputs and their results cross process boundaries by
    pickling; a task that cannot be pickled raises :class:`ExecutorError`
    with a pointer at the offending pattern.  The pool is created lazily and
    reused across calls so repeated jobs (one per simulation tick) amortize
    the worker start-up cost.

    Resident shards get *real* process affinity: :meth:`init_shards` creates
    dedicated single-worker host pools and assigns each shard to one host for
    its whole lifetime, so shard state built there never moves.  Every
    payload and result is pickled exactly once, and the measured sizes are
    reported on each :class:`ShardTaskResult` — the actual bytes on the wire.
    """

    name = "process"
    shares_memory = False

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._shard_hosts: list[ProcessPoolExecutor] | None = None
        self._shard_to_host: dict[int, int] = {}
        self._host_pids: dict[int, int] = {}
        self._shm_pool = None   # driver-owned command segments (lazily built)
        self._shm_cache = None  # driver attachments to host result segments
        self._host_release: dict[int, list[str]] = {}

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.max_workers)

    # ------------------------------------------------------------------
    # Resident shards with process affinity
    # ------------------------------------------------------------------
    def init_shards(
        self,
        factory: Callable[[int, Any], Any],
        payloads: dict[int, Any],
        codec=None,
    ) -> None:
        if self._shard_hosts is not None:
            raise ExecutorError(
                "resident shards are already initialized; call teardown_shards() first"
            )
        if not payloads:
            raise ExecutorError("init_shards needs at least one shard payload")
        shard_ids = sorted(payloads)
        num_hosts = max(1, min(self.max_workers, len(shard_ids)))
        self._shard_hosts = [ProcessPoolExecutor(max_workers=1) for _ in range(num_hosts)]
        self._shard_to_host = {
            shard_id: position % num_hosts for position, shard_id in enumerate(shard_ids)
        }
        per_host: dict[int, list] = {}
        try:
            for shard_id in shard_ids:
                blob = self._encode(codec, payloads[shard_id], "resident shard seed")
                per_host.setdefault(self._shard_to_host[shard_id], []).append(
                    (shard_id, factory, blob)
                )
            futures = {
                host: self._shard_hosts[host].submit(_host_init_shards, items, codec)
                for host, items in sorted(per_host.items())
            }
            wait(list(futures.values()), return_when=FIRST_EXCEPTION)
            for host, future in sorted(futures.items()):
                self._host_pids[host] = self._shard_result(future)
        except BaseException:
            self.teardown_shards()
            raise

    def has_shards(self) -> bool:
        return self._shard_hosts is not None

    def run_sharded_tasks(
        self,
        tasks: Sequence[tuple[int, Callable[[Any, Any], Any], Any]],
        codec=None,
        overlap: bool = False,
    ) -> list[ShardTaskResult]:
        if self._shard_hosts is None:
            raise ExecutorError("no resident shards are initialized; call init_shards() first")
        if not tasks:
            return []
        if codec is not None:
            return self._run_framed_tasks(tasks, codec, overlap)
        groups: dict[int, list] = {}
        dump_seconds: dict[int, float] = {}
        for index, (shard_id, fn, payload) in enumerate(tasks):
            host = self._shard_to_host.get(shard_id)
            if host is None:
                raise ExecutorError(f"unknown resident shard {shard_id!r}")
            start = time.perf_counter()
            blob = self._dumps(payload, "resident shard payload")
            dump_seconds[index] = time.perf_counter() - start
            groups.setdefault(host, []).append((index, shard_id, fn, blob))
        futures = {
            host: self._shard_hosts[host].submit(
                _host_run_shard_tasks, [(shard_id, fn, blob) for _, shard_id, fn, blob in items]
            )
            for host, items in sorted(groups.items())
        }
        wait(list(futures.values()), return_when=FIRST_EXCEPTION)
        results: list[ShardTaskResult | None] = [None] * len(tasks)
        for host, items in sorted(groups.items()):
            host_results = self._shard_result(futures[host])
            for (index, shard_id, _fn, blob), (value_blob, seconds, host_codec) in zip(
                items, host_results
            ):
                start = time.perf_counter()
                value = pickle.loads(value_blob)
                loads_seconds = time.perf_counter() - start
                results[index] = ShardTaskResult(
                    shard_id,
                    value,
                    seconds,
                    payload_bytes=len(blob),
                    result_bytes=len(value_blob),
                    serialize_seconds=dump_seconds[index] + host_codec + loads_seconds,
                )
        return results  # type: ignore[return-value]

    def _run_framed_tasks(self, tasks, codec, overlap: bool) -> list[ShardTaskResult]:
        """The columnar wire path: framed payloads, pooled shm, overlap.

        Each task travels as one encoded frame.  With shared memory the
        frame parks in a driver-owned pooled segment and only a tiny token
        crosses the pipe; hosts return their results the same way (tokens
        into host-owned pools), and each side's segments recycle — command
        segments when their round's future completes, result segments via
        the release list piggybacked on the host's next task.  ``overlap``
        submits each task the moment its frame is encoded, so hosts decode
        and compute while the driver is still encoding later frames.
        """
        from repro.ipc import transport as ipc_transport

        use_shm = ipc_transport.shm_available()
        if use_shm and self._shm_pool is None:
            self._shm_pool = ipc_transport.SegmentPool()
            self._shm_cache = ipc_transport.SegmentCache()
        pending: list = []
        for index, (shard_id, fn, payload) in enumerate(tasks):
            host = self._shard_to_host.get(shard_id)
            if host is None:
                raise ExecutorError(f"unknown resident shard {shard_id!r}")
            start = time.perf_counter()
            blob = self._encode(codec, payload, "resident shard payload")
            encode_seconds = time.perf_counter() - start
            token = None
            shm_seconds = 0.0
            if use_shm:
                start = time.perf_counter()
                try:
                    token = self._shm_pool.write(blob)
                except OSError:  # no room in /dev/shm: the pipe still works
                    token = None
                shm_seconds = time.perf_counter() - start
            entry = {
                "index": index,
                "shard_id": shard_id,
                "host": host,
                "fn": fn,
                "frame": token if token is not None else blob,
                "token": token,
                "payload_bytes": len(blob),
                "serialize": encode_seconds,
                "transport": shm_seconds,
                "future": None,
            }
            if overlap:
                self._submit_framed(entry, codec, use_shm)
            pending.append(entry)
        for entry in pending:
            if entry["future"] is None:
                self._submit_framed(entry, codec, use_shm)
        wait([entry["future"] for entry in pending], return_when=FIRST_EXCEPTION)
        results: list[ShardTaskResult | None] = [None] * len(tasks)
        for entry in pending:
            result_ref, result_bytes, seconds, host_codec, host_shm = self._shard_result(
                entry["future"]
            )
            start = time.perf_counter()
            if isinstance(result_ref, ipc_transport.FrameToken):
                view = self._shm_cache.view(result_ref)
                shm_seconds = time.perf_counter() - start
                start = time.perf_counter()
                try:
                    value = codec.decode(view)
                finally:
                    view.release()
                decode_seconds = time.perf_counter() - start
                self._host_release.setdefault(entry["host"], []).append(result_ref.name)
            else:
                value = codec.decode(result_ref)
                decode_seconds = time.perf_counter() - start
                shm_seconds = 0.0
            if entry["token"] is not None:
                # The host consumed the command frame before its future
                # resolved, so the segment can host next round's command.
                self._shm_pool.release(entry["token"].name)
            results[entry["index"]] = ShardTaskResult(
                entry["shard_id"],
                value,
                seconds,
                payload_bytes=entry["payload_bytes"],
                result_bytes=result_bytes,
                serialize_seconds=entry["serialize"] + host_codec + decode_seconds,
                transport_seconds=entry["transport"] + host_shm + shm_seconds,
            )
        return results  # type: ignore[return-value]

    def _submit_framed(self, entry: dict, codec, use_shm: bool) -> None:
        host = entry["host"]
        release_names = self._host_release.pop(host, [])
        entry["future"] = self._shard_hosts[host].submit(
            _host_run_framed_task,
            codec,
            entry["shard_id"],
            entry["fn"],
            entry["frame"],
            release_names,
            use_shm,
        )

    def shard_host_pid(self, shard_id: int) -> int:
        """Pid of the host process a shard is pinned to (affinity probe)."""
        if self._shard_hosts is None:
            raise ExecutorError("no resident shards are initialized")
        return self._host_pids[self._shard_to_host[shard_id]]

    def teardown_shards(self) -> None:
        hosts, self._shard_hosts = self._shard_hosts, None
        self._shard_to_host = {}
        self._host_pids = {}
        self._host_release = {}
        if self._shm_cache is not None:
            # Drop driver attachments before the hosts unlink their segments.
            self._shm_cache.close()
            self._shm_cache = None
        if hosts:
            for host in hosts:
                try:
                    host.submit(_host_close_transport).result(timeout=30)
                except Exception:
                    pass  # a broken host cannot clean up; nothing to do
                host.shutdown(wait=True)
        if self._shm_pool is not None:
            self._shm_pool.close()
            self._shm_pool = None

    def _shard_result(self, future: Future):
        """Unwrap a host future, converting infrastructure failures.

        A dead host process takes its resident shard states with it, so the
        hosts are torn down and the caller must re-seed (for BRACE: restore a
        checkpoint and re-initialize the shards).
        """
        try:
            return future.result()
        except BrokenProcessPool as error:
            self.teardown_shards()
            raise ExecutorError(
                "a resident shard host process died; its shard state is lost and "
                "must be re-seeded (for BRACE runs: recover from the last "
                f"checkpoint). Original error: {error}"
            ) from error
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            self.teardown_shards()
            raise ExecutorError(
                f"the {self.name} executor could not serialize a shard task: {error}. "
                "Shard factories, task functions and payloads must be picklable "
                "(module-level functions and importable classes)."
            ) from error

    @classmethod
    def _encode(cls, codec, value: Any, what: str) -> bytes:
        """Encode ``value`` with the codec (or plain pickle), classifying failures."""
        if codec is None:
            return cls._dumps(value, what)
        try:
            return codec.encode(value)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the process executor could not serialize a {what}: {error}. "
                "Everything crossing the shard boundary must be picklable "
                "(module-level functions and importable classes; dynamic classes "
                "need a __reduce__ hook)."
            ) from error

    @staticmethod
    def _dumps(value: Any, what: str) -> bytes:
        """Pickle ``value`` once, classifying serialization failures."""
        try:
            return pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the process executor could not serialize a {what}: {error}. "
                "Everything crossing the shard boundary must be picklable "
                "(module-level functions and importable classes; dynamic classes "
                "need a __reduce__ hook)."
            ) from error


def make_executor(
    executor: "Executor | str | None", max_workers: int | None = None
) -> Executor:
    """Coerce a backend name (or an existing executor) into an :class:`Executor`.

    ``None`` and ``"serial"`` yield the serial backend; ``"thread"`` and
    ``"process"`` yield the pooled backends with ``max_workers`` parallel
    slots (defaulting to the CPU count).  ``"cluster"`` yields the
    socket-based multi-node backend (:mod:`repro.cluster.client`) with its
    defaults — two auto-spawned localhost nodes; construct
    :class:`~repro.cluster.client.ClusterExecutor` directly (or configure
    ``BraceConfig``) for real topologies.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(max_workers)
    if executor == "process":
        return ProcessExecutor(max_workers)
    if executor == "cluster":
        from repro.cluster.client import ClusterExecutor

        return ClusterExecutor(max_workers)
    raise ExecutorError(
        f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
