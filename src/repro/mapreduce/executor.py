"""Pluggable parallel execution backends for the MapReduce engine.

The paper's central performance claim is that behavioral simulations scale
near-linearly when expressed as iterated map-reduce-reduce passes.  The
engine in :mod:`repro.mapreduce.engine` expresses the passes; this module
supplies the *executors* that actually run the map and reduce tasks:

* :class:`SerialExecutor` — runs every task inline in the calling thread
  (the original single-process behavior, and the default);
* :class:`ThreadExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  backend; tasks share the interpreter, so it preserves in-place mutation
  semantics but is limited by the GIL for pure-Python work;
* :class:`ProcessExecutor` — a
  :class:`concurrent.futures.ProcessPoolExecutor` backend; tasks and their
  inputs are pickled to worker processes, so CPU-bound map/reduce work runs
  genuinely in parallel.

All three backends share one contract, :meth:`Executor.run_tasks`: execute a
list of zero-argument callables and return one :class:`TaskResult` per task,
*in submission order*, with per-task wall-clock timing measured where the
task ran.  Keeping results in submission order is what lets the engine
produce bit-identical output regardless of the backend.

The module also provides :func:`stable_hash_partition`, a deterministic
(process-independent) hash partitioner used for the parallel shuffle.
Python's builtin ``hash`` is salted per interpreter for strings, so it would
assign keys to different reduce partitions in different worker processes;
CRC-32 over ``repr(key)`` is stable everywhere.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from repro.core.errors import ExecutorError

#: Executor kinds accepted by :func:`make_executor` and ``BraceConfig.executor``.
EXECUTOR_KINDS = ("serial", "thread", "process")


def stable_hash_partition(key: Hashable, num_partitions: int) -> int:
    """Deterministically assign ``key`` to one of ``num_partitions`` buckets.

    Uses CRC-32 of ``repr(key)`` so the assignment is identical across
    interpreter instances and worker processes (unlike the salted builtin
    ``hash``).
    """
    if num_partitions <= 1:
        return 0
    data = repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) % num_partitions


def default_worker_count() -> int:
    """A sensible default parallelism level: the machine's CPU count."""
    return os.cpu_count() or 1


def wall_clock_imbalance(seconds: Sequence[float]) -> float:
    """Max-over-mean ratio of per-task wall-clock times (1.0 = perfectly even).

    The load-skew summary shared by the MapReduce task statistics and the
    BRACE per-worker phase statistics.
    """
    if not seconds:
        return 1.0
    mean = sum(seconds) / len(seconds)
    if mean <= 0.0:
        return 1.0
    return max(seconds) / mean


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one executed task."""

    index: int          #: Position of the task in the submitted batch.
    value: Any          #: The task's return value.
    wall_seconds: float  #: Wall-clock time spent running the task body.


def _timed_call(task: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``task`` and measure its wall-clock time where it executes.

    Module-level so the :class:`ProcessExecutor` can pickle it; the timing is
    taken inside the worker, excluding queueing and serialization overhead.
    """
    start = time.perf_counter()
    value = task()
    return value, time.perf_counter() - start


class Executor:
    """Base class of the execution backends.

    Subclasses implement :meth:`run_tasks`; everything else (context-manager
    protocol, idempotent shutdown) is shared.
    """

    #: Short name used in statistics and configuration ("serial", ...).
    name: str = "abstract"
    #: True when tasks run in the caller's address space, so in-place
    #: mutation of shared objects is visible to the caller.  The BRACE
    #: runtime uses this to decide between in-place and message-passing
    #: phase execution.
    shares_memory: bool = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and int(max_workers) < 1:
            raise ExecutorError("max_workers must be at least 1 (or None for the CPU count)")
        self.max_workers = int(max_workers) if max_workers is not None else default_worker_count()

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        """Execute every task and return per-task results in submission order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any pooled workers (idempotent; pools are re-created lazily)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} max_workers={self.max_workers}>"


class SerialExecutor(Executor):
    """Runs every task inline in the calling thread (the default backend)."""

    name = "serial"
    shares_memory = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        results = []
        for index, task in enumerate(tasks):
            value, seconds = _timed_call(task)
            results.append(TaskResult(index, value, seconds))
        return results


class _PooledExecutor(Executor):
    """Shared machinery of the thread and process backends (lazy pool reuse)."""

    shares_memory = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        if not tasks:
            return []
        if len(tasks) == 1 and self.shares_memory:
            # One thread-pool task cannot overlap with anything and has the
            # same semantics inline, so skip the pool.  The process backend
            # must NOT shortcut: its pickling contract (and isolation) has to
            # hold for one task exactly as for many.
            value, seconds = _timed_call(tasks[0])
            return [TaskResult(0, value, seconds)]
        pool = self._ensure_pool()
        futures: list[Future] = [pool.submit(_timed_call, task) for task in tasks]
        wait(futures, return_when=FIRST_EXCEPTION)
        results = []
        for index, future in enumerate(futures):
            try:
                value, seconds = future.result()
            # A worker that dies deserializing a task (e.g. the task's
            # function lives in a __main__ the child cannot re-import) takes
            # the whole pool down.  Drop the broken pool so the next call
            # starts fresh, and explain the likely cause.
            except BrokenProcessPool as error:
                self._pool = None
                raise ExecutorError(
                    f"a {self.name} executor worker died while receiving a task "
                    "(most often the task's function could not be re-imported in "
                    "the worker process — define map/reduce functions in an "
                    "importable module, not in __main__ or a REPL). "
                    f"Original error: {error}"
                ) from error
            # Serialization failures surface as PicklingError for module-level
            # objects, AttributeError for locally defined functions/classes and
            # TypeError for unpicklable values (locks, generators...).  Only
            # the process backend pickles tasks, and only errors that actually
            # talk about pickling are classified, so a genuine
            # AttributeError/TypeError raised *inside* a task passes through.
            except (pickle.PickleError, AttributeError, TypeError) as error:
                if self.shares_memory:
                    raise
                if not isinstance(error, pickle.PickleError) and (
                    "pickle" not in str(error).lower()
                ):
                    raise
                for pending in futures:
                    pending.cancel()
                raise ExecutorError(
                    f"the {self.name} executor could not serialize a task: {error}. "
                    "Map/reduce functions and the records flowing through them must "
                    "be picklable (module-level functions or classes); use the "
                    "serial or thread executor for closures and dynamic classes."
                ) from error
            results.append(TaskResult(index, value, seconds))
        return results


class ThreadExecutor(_PooledExecutor):
    """Runs tasks on a shared :class:`ThreadPoolExecutor`.

    Preserves in-place mutation semantics (tasks see the caller's objects),
    which makes it a drop-in parallel backend for the BRACE worker phases.
    Pure-Python work is GIL-bound, so expect overlap rather than speedup
    unless tasks release the GIL (NumPy kernels, I/O).
    """

    name = "thread"
    shares_memory = True

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="mapreduce"
        )


class ProcessExecutor(_PooledExecutor):
    """Runs tasks on a shared :class:`ProcessPoolExecutor`.

    Tasks, their inputs and their results cross process boundaries by
    pickling; a task that cannot be pickled raises :class:`ExecutorError`
    with a pointer at the offending pattern.  The pool is created lazily and
    reused across calls so repeated jobs (one per simulation tick) amortize
    the worker start-up cost.
    """

    name = "process"
    shares_memory = False

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.max_workers)


def make_executor(
    executor: "Executor | str | None", max_workers: int | None = None
) -> Executor:
    """Coerce a backend name (or an existing executor) into an :class:`Executor`.

    ``None`` and ``"serial"`` yield the serial backend; ``"thread"`` and
    ``"process"`` yield the pooled backends with ``max_workers`` parallel
    slots (defaulting to the CPU count).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(max_workers)
    if executor == "process":
        return ProcessExecutor(max_workers)
    raise ExecutorError(
        f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
