"""Key-value records for the MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class KeyValue:
    """An immutable key-value pair flowing between map and reduce tasks."""

    key: Hashable
    value: Any

    def as_tuple(self) -> tuple[Hashable, Any]:
        """Return ``(key, value)``."""
        return (self.key, self.value)

    @staticmethod
    def wrap(pair) -> "KeyValue":
        """Coerce a ``(key, value)`` tuple or an existing KeyValue."""
        if isinstance(pair, KeyValue):
            return pair
        key, value = pair
        return KeyValue(key, value)
