"""The in-memory MapReduce engine.

The engine implements the classic functional-programming contract:

* ``map : (k1, v1) -> [(k2, v2)]``
* ``reduce : (k2, [v2]) -> [(k3, v3)]``

(the iterative variant of the paper, where reduce emits key-value pairs so
its output can feed the next map step).  A ``map_reduce_reduce`` job adds the
second reduce pass used for non-local effect assignments.

Execution is delegated to a pluggable :class:`~repro.mapreduce.executor.Executor`:
the input is split into chunked map tasks, intermediate pairs are grouped by
key and hash-partitioned across reduce tasks with a deterministic partitioner,
and an optional per-job *combiner* pre-aggregates each map chunk's output
before the shuffle to cut cross-partition traffic.  With the default
:class:`~repro.mapreduce.executor.SerialExecutor` everything runs inline in
one thread, reproducing the original single-process behavior; the thread and
process backends run the same tasks concurrently.  Output ordering is defined
by the sorted key order of the reduce input groups — independent of the
backend — so a job produces bit-identical results on every executor.

"Partitions" are tracked explicitly in :class:`JobStatistics` so callers
(the BRACE runtime, the cluster cost model, the scale-up benchmarks) can
attribute work, wall-clock time and communication to individual tasks and
observe load imbalance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.core.errors import MapReduceError
from repro.mapreduce.executor import (
    Executor,
    make_executor,
    stable_hash_partition,
    wall_clock_imbalance,
)
from repro.mapreduce.types import KeyValue

MapFunction = Callable[[Hashable, Any], Iterable[tuple[Hashable, Any]]]
ReduceFunction = Callable[[Hashable, list[Any]], Iterable[tuple[Hashable, Any]]]
CombinerFunction = Callable[[Hashable, list[Any]], Iterable[tuple[Hashable, Any]]]


@dataclass
class ShuffleStatistics:
    """Counts collected while grouping intermediate pairs by key."""

    pairs: int = 0
    distinct_keys: int = 0


@dataclass
class TaskStatistics:
    """Accounting for one map chunk or one reduce partition."""

    task: int            #: Chunk index (map) or partition index (reduce).
    pairs_in: int        #: Input pairs (map) or grouped keys (reduce).
    pairs_out: int       #: Emitted pairs.
    wall_seconds: float  #: Wall-clock time of the task body where it ran.


def _imbalance(timings: Sequence[TaskStatistics]) -> float:
    """Max-over-mean wall-clock ratio of a task batch (1.0 = perfectly even)."""
    return wall_clock_imbalance([timing.wall_seconds for timing in timings])


@dataclass
class JobStatistics:
    """Work accounting for one MapReduce job execution."""

    map_input_pairs: int = 0
    map_output_pairs: int = 0
    reduce_output_pairs: int = 0
    shuffle: ShuffleStatistics = field(default_factory=ShuffleStatistics)
    second_reduce_output_pairs: int = 0
    #: Name of the executor backend the job ran on.
    executor: str = "serial"
    #: Map emissions eliminated by the per-chunk combiner before the shuffle.
    combined_pairs: int = 0
    #: Per-chunk map-task accounting, in chunk order.
    map_tasks: list[TaskStatistics] = field(default_factory=list)
    #: Per-partition reduce-task accounting (both passes), in partition order.
    reduce_partitions: list[TaskStatistics] = field(default_factory=list)

    @property
    def map_task_count(self) -> int:
        """Number of chunked map tasks executed."""
        return len(self.map_tasks)

    @property
    def reduce_partition_count(self) -> int:
        """Number of hash-partitioned reduce tasks executed."""
        return len(self.reduce_partitions)

    @property
    def map_imbalance(self) -> float:
        """Max-over-mean wall-clock ratio across map tasks."""
        return _imbalance(self.map_tasks)

    @property
    def reduce_imbalance(self) -> float:
        """Max-over-mean wall-clock ratio across reduce partitions."""
        return _imbalance(self.reduce_partitions)


@dataclass
class MapReduceJob:
    """A single-pass job: one map function and one reduce function.

    ``combiner_fn`` optionally pre-aggregates each map chunk's output (the
    classic MapReduce combiner): it receives every value a chunk emitted for
    a key and must emit pairs equivalent to what the reduce function could
    later merge.  It must be associative and commutative for the job's result
    to be independent of the chunking.
    """

    map_fn: MapFunction
    reduce_fn: ReduceFunction
    name: str = "job"
    combiner_fn: CombinerFunction | None = None


@dataclass
class MapReduceReduceJob:
    """A map–reduce–reduce job (the non-local-effect model of Table 1).

    The second map task of the formal model is the identity and "can be
    eliminated in an implementation", so this job goes straight from the
    first reduce into a second shuffle + reduce.
    """

    map_fn: MapFunction
    reduce1_fn: ReduceFunction
    reduce2_fn: ReduceFunction
    name: str = "job"
    combiner_fn: CombinerFunction | None = None


class _MapChunkTask:
    """One chunked map task (picklable: no closures, no engine reference)."""

    def __init__(
        self, map_fn: MapFunction, pairs: list[KeyValue], combiner_fn: CombinerFunction | None
    ):
        self.map_fn = map_fn
        self.pairs = pairs
        self.combiner_fn = combiner_fn

    def __call__(self) -> tuple[list[KeyValue], int, int]:
        """Return ``(output pairs, raw emission count, combined-away count)``."""
        output: list[KeyValue] = []
        for pair in self.pairs:
            emitted = self.map_fn(pair.key, pair.value)
            if emitted is None:
                continue
            for out_pair in emitted:
                output.append(KeyValue.wrap(out_pair))
        raw_emissions = len(output)
        if self.combiner_fn is not None and output:
            grouped: dict[Hashable, list[Any]] = defaultdict(list)
            for pair in output:
                grouped[pair.key].append(pair.value)
            combined: list[KeyValue] = []
            for key, values in grouped.items():  # insertion order: deterministic
                emitted = self.combiner_fn(key, values)
                if emitted is None:
                    continue
                combined.extend(KeyValue.wrap(out_pair) for out_pair in emitted)
            output = combined
        return output, raw_emissions, raw_emissions - len(output)


class _ReducePartitionTask:
    """One hash partition's worth of reduce work (picklable)."""

    def __init__(self, reduce_fn: ReduceFunction, groups: list[tuple[Hashable, list[Any]]]):
        self.reduce_fn = reduce_fn
        self.groups = groups

    def __call__(self) -> list[tuple[Hashable, list[KeyValue]]]:
        """Return ``(group key, emitted pairs)`` for every key in the partition."""
        results: list[tuple[Hashable, list[KeyValue]]] = []
        for key, values in self.groups:
            emitted = self.reduce_fn(key, values)
            if emitted is None:
                results.append((key, []))
                continue
            results.append((key, [KeyValue.wrap(out_pair) for out_pair in emitted]))
        return results


class MapReduceEngine:
    """Executes jobs over in-memory input pairs.

    Parameters
    ----------
    executor:
        An :class:`~repro.mapreduce.executor.Executor`, a backend name
        (``"serial"``, ``"thread"``, ``"process"``) or ``None`` (serial).
    map_tasks_per_worker:
        Map input is split into ``executor.max_workers * map_tasks_per_worker``
        chunks so a slow chunk does not stall a whole worker slot.
    """

    def __init__(
        self,
        executor: Executor | str | None = None,
        map_tasks_per_worker: int = 2,
    ):
        self.executor = make_executor(executor)
        self.map_tasks_per_worker = max(1, int(map_tasks_per_worker))
        self.last_statistics: JobStatistics | None = None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run_map(
        self,
        map_fn: MapFunction,
        pairs: Sequence[KeyValue],
        statistics: JobStatistics,
        combiner_fn: CombinerFunction | None = None,
    ) -> list[KeyValue]:
        """Apply the map function to every input pair via chunked tasks."""
        statistics.map_input_pairs += len(pairs)
        if not pairs:
            return []
        num_chunks = min(len(pairs), self.executor.max_workers * self.map_tasks_per_worker)
        chunk_size = -(-len(pairs) // num_chunks)  # ceil division
        tasks = [
            _MapChunkTask(map_fn, list(pairs[start : start + chunk_size]), combiner_fn)
            for start in range(0, len(pairs), chunk_size)
        ]
        output: list[KeyValue] = []
        for result in self.executor.run_tasks(tasks):
            chunk_output, raw_emissions, combined_away = result.value
            statistics.map_output_pairs += raw_emissions
            statistics.combined_pairs += combined_away
            statistics.map_tasks.append(
                TaskStatistics(
                    task=result.index,
                    pairs_in=len(tasks[result.index].pairs),
                    pairs_out=len(chunk_output),
                    wall_seconds=result.wall_seconds,
                )
            )
            output.extend(chunk_output)
        return output

    def shuffle(
        self, pairs: Sequence[KeyValue], statistics: JobStatistics | None = None
    ) -> dict[Hashable, list[Any]]:
        """Group intermediate values by key."""
        grouped: dict[Hashable, list[Any]] = defaultdict(list)
        for pair in pairs:
            grouped[pair.key].append(pair.value)
        if statistics is not None:
            statistics.shuffle.pairs += len(pairs)
            statistics.shuffle.distinct_keys += len(grouped)
        return dict(grouped)

    def run_reduce(
        self,
        reduce_fn: ReduceFunction,
        grouped: dict[Hashable, list[Any]],
        statistics: JobStatistics,
        second_pass: bool = False,
    ) -> list[KeyValue]:
        """Apply the reduce function to every key group.

        Key groups are hash-partitioned across reduce tasks with the
        deterministic partitioner; the final output is ordered by the sorted
        key order of the input groups (identical on every backend).
        """
        if not grouped:
            return []
        sorted_keys = sorted(grouped, key=repr)
        num_partitions = min(len(sorted_keys), self.executor.max_workers)
        partitions: list[list[tuple[Hashable, list[Any]]]] = [
            [] for _ in range(num_partitions)
        ]
        for key in sorted_keys:
            partitions[stable_hash_partition(key, num_partitions)].append((key, grouped[key]))
        tasks = [_ReducePartitionTask(reduce_fn, groups) for groups in partitions]

        outputs_by_key: dict[Hashable, list[KeyValue]] = {}
        for result in self.executor.run_tasks(tasks):
            pairs_out = 0
            for key, emitted in result.value:
                outputs_by_key[key] = emitted
                pairs_out += len(emitted)
            statistics.reduce_partitions.append(
                TaskStatistics(
                    task=result.index,
                    pairs_in=len(partitions[result.index]),
                    pairs_out=pairs_out,
                    wall_seconds=result.wall_seconds,
                )
            )

        output: list[KeyValue] = []
        for key in sorted_keys:
            emitted = outputs_by_key.get(key, [])
            output.extend(emitted)
            if second_pass:
                statistics.second_reduce_output_pairs += len(emitted)
            else:
                statistics.reduce_output_pairs += len(emitted)
        return output

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def run(self, job: MapReduceJob | MapReduceReduceJob, pairs: Iterable[Any]) -> list[KeyValue]:
        """Run one job over ``pairs`` and return the reduce output."""
        input_pairs = [KeyValue.wrap(pair) for pair in pairs]
        statistics = JobStatistics(executor=self.executor.name)
        if isinstance(job, MapReduceJob):
            mapped = self.run_map(job.map_fn, input_pairs, statistics, job.combiner_fn)
            grouped = self.shuffle(mapped, statistics)
            output = self.run_reduce(job.reduce_fn, grouped, statistics)
        elif isinstance(job, MapReduceReduceJob):
            mapped = self.run_map(job.map_fn, input_pairs, statistics, job.combiner_fn)
            grouped = self.shuffle(mapped, statistics)
            intermediate = self.run_reduce(job.reduce1_fn, grouped, statistics)
            regrouped = self.shuffle(intermediate, statistics)
            output = self.run_reduce(job.reduce2_fn, regrouped, statistics, second_pass=True)
        else:
            raise MapReduceError(f"unsupported job type {type(job).__name__}")
        self.last_statistics = statistics
        return output

    def shutdown(self) -> None:
        """Release the executor's pooled workers, if any."""
        self.executor.shutdown()


class IterativeMapReduce:
    """Runs a job repeatedly, feeding each iteration's output into the next.

    This is the iterated MapReduce model of Section 2.2: the reduce output is
    a list of key-value pairs that becomes the next map step's input.
    """

    def __init__(
        self,
        engine: MapReduceEngine | None = None,
        executor: Executor | str | None = None,
    ):
        if engine is not None and executor is not None:
            raise MapReduceError(
                "pass either an engine or an executor, not both: the engine "
                "already carries its own executor"
            )
        self.engine = engine or MapReduceEngine(executor=executor)
        self.iteration_statistics: list[JobStatistics] = []

    def run(
        self,
        job_factory: Callable[[int], MapReduceJob | MapReduceReduceJob],
        initial_pairs: Iterable[Any],
        iterations: int,
    ) -> list[KeyValue]:
        """Run ``iterations`` rounds; ``job_factory(i)`` builds the job for round ``i``."""
        pairs = [KeyValue.wrap(pair) for pair in initial_pairs]
        self.iteration_statistics = []
        for iteration in range(iterations):
            job = job_factory(iteration)
            pairs = self.engine.run(job, pairs)
            if self.engine.last_statistics is not None:
                self.iteration_statistics.append(self.engine.last_statistics)
        return pairs
