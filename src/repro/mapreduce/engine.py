"""The in-memory MapReduce engine.

The engine implements the classic functional-programming contract:

* ``map : (k1, v1) -> [(k2, v2)]``
* ``reduce : (k2, [v2]) -> [(k3, v3)]``

(the iterative variant of the paper, where reduce emits key-value pairs so
its output can feed the next map step).  A ``map_reduce_reduce`` job adds the
second reduce pass used for non-local effect assignments.

Everything runs in main memory inside one process; "partitions" are the unit
of reduce-side parallelism and are tracked explicitly so callers (the BRACE
runtime, the cluster cost model) can attribute work and communication to
simulated workers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.core.errors import MapReduceError
from repro.mapreduce.types import KeyValue

MapFunction = Callable[[Hashable, Any], Iterable[tuple[Hashable, Any]]]
ReduceFunction = Callable[[Hashable, list[Any]], Iterable[tuple[Hashable, Any]]]


@dataclass
class ShuffleStatistics:
    """Counts collected while grouping intermediate pairs by key."""

    pairs: int = 0
    distinct_keys: int = 0


@dataclass
class JobStatistics:
    """Work accounting for one MapReduce job execution."""

    map_input_pairs: int = 0
    map_output_pairs: int = 0
    reduce_output_pairs: int = 0
    shuffle: ShuffleStatistics = field(default_factory=ShuffleStatistics)
    second_reduce_output_pairs: int = 0


@dataclass
class MapReduceJob:
    """A single-pass job: one map function and one reduce function."""

    map_fn: MapFunction
    reduce_fn: ReduceFunction
    name: str = "job"


@dataclass
class MapReduceReduceJob:
    """A map–reduce–reduce job (the non-local-effect model of Table 1).

    The second map task of the formal model is the identity and "can be
    eliminated in an implementation", so this job goes straight from the
    first reduce into a second shuffle + reduce.
    """

    map_fn: MapFunction
    reduce1_fn: ReduceFunction
    reduce2_fn: ReduceFunction
    name: str = "job"


class MapReduceEngine:
    """Executes jobs over in-memory input pairs."""

    def __init__(self):
        self.last_statistics: JobStatistics | None = None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run_map(
        self, map_fn: MapFunction, pairs: Sequence[KeyValue], statistics: JobStatistics
    ) -> list[KeyValue]:
        """Apply the map function to every input pair."""
        output: list[KeyValue] = []
        for pair in pairs:
            statistics.map_input_pairs += 1
            emitted = map_fn(pair.key, pair.value)
            if emitted is None:
                continue
            for out_pair in emitted:
                output.append(KeyValue.wrap(out_pair))
                statistics.map_output_pairs += 1
        return output

    def shuffle(
        self, pairs: Sequence[KeyValue], statistics: JobStatistics | None = None
    ) -> dict[Hashable, list[Any]]:
        """Group intermediate values by key."""
        grouped: dict[Hashable, list[Any]] = defaultdict(list)
        for pair in pairs:
            grouped[pair.key].append(pair.value)
        if statistics is not None:
            statistics.shuffle.pairs += len(pairs)
            statistics.shuffle.distinct_keys += len(grouped)
        return dict(grouped)

    def run_reduce(
        self,
        reduce_fn: ReduceFunction,
        grouped: dict[Hashable, list[Any]],
        statistics: JobStatistics,
        second_pass: bool = False,
    ) -> list[KeyValue]:
        """Apply the reduce function to every key group (keys in sorted order)."""
        output: list[KeyValue] = []
        for key in sorted(grouped, key=repr):
            emitted = reduce_fn(key, grouped[key])
            if emitted is None:
                continue
            for out_pair in emitted:
                output.append(KeyValue.wrap(out_pair))
                if second_pass:
                    statistics.second_reduce_output_pairs += 1
                else:
                    statistics.reduce_output_pairs += 1
        return output

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def run(self, job: MapReduceJob | MapReduceReduceJob, pairs: Iterable[Any]) -> list[KeyValue]:
        """Run one job over ``pairs`` and return the reduce output."""
        input_pairs = [KeyValue.wrap(pair) for pair in pairs]
        statistics = JobStatistics()
        if isinstance(job, MapReduceJob):
            mapped = self.run_map(job.map_fn, input_pairs, statistics)
            grouped = self.shuffle(mapped, statistics)
            output = self.run_reduce(job.reduce_fn, grouped, statistics)
        elif isinstance(job, MapReduceReduceJob):
            mapped = self.run_map(job.map_fn, input_pairs, statistics)
            grouped = self.shuffle(mapped, statistics)
            intermediate = self.run_reduce(job.reduce1_fn, grouped, statistics)
            regrouped = self.shuffle(intermediate, statistics)
            output = self.run_reduce(job.reduce2_fn, regrouped, statistics, second_pass=True)
        else:
            raise MapReduceError(f"unsupported job type {type(job).__name__}")
        self.last_statistics = statistics
        return output


class IterativeMapReduce:
    """Runs a job repeatedly, feeding each iteration's output into the next.

    This is the iterated MapReduce model of Section 2.2: the reduce output is
    a list of key-value pairs that becomes the next map step's input.
    """

    def __init__(self, engine: MapReduceEngine | None = None):
        self.engine = engine or MapReduceEngine()
        self.iteration_statistics: list[JobStatistics] = []

    def run(
        self,
        job_factory: Callable[[int], MapReduceJob | MapReduceReduceJob],
        initial_pairs: Iterable[Any],
        iterations: int,
    ) -> list[KeyValue]:
        """Run ``iterations`` rounds; ``job_factory(i)`` builds the job for round ``i``."""
        pairs = [KeyValue.wrap(pair) for pair in initial_pairs]
        self.iteration_statistics = []
        for iteration in range(iterations):
            job = job_factory(iteration)
            pairs = self.engine.run(job, pairs)
            if self.engine.last_statistics is not None:
                self.iteration_statistics.append(self.engine.last_statistics)
        return pairs
