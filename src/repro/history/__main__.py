"""Record a small reference trajectory from the command line.

``python -m repro.history <path>`` runs one of the paper's workloads with
history recording attached and prints a summary of the resulting store —
used by CI to produce a store fixture artifact, and handy for generating
a trajectory to poke at interactively::

    python -m repro.history /tmp/fish_run --workload fish --agents 40 --ticks 24
    python -m repro.history /tmp/ring_run --workload ring --executor process
"""

from __future__ import annotations

import argparse

from repro.api import Simulation
from repro.history import History
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.traffic.ring import build_ring_world


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.history",
        description="Record a reference trajectory into a history store.",
    )
    parser.add_argument("path", help="directory to record the trajectory into")
    parser.add_argument(
        "--workload", choices=("fish", "ring"), default="fish",
        help="which workload to run (default: fish)",
    )
    parser.add_argument("--agents", type=int, default=40, help="number of agents")
    parser.add_argument("--ticks", type=int, default=24, help="ticks to record")
    parser.add_argument("--seed", type=int, default=11, help="simulation seed")
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial",
        help="executor backend (default: serial)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="full-checkpoint cadence in ticks (default: 8)",
    )
    parser.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing store at the target path",
    )
    args = parser.parse_args(argv)

    if args.workload == "fish":
        # The canonical Fish class is importable by name, so recorded clones
        # (and process-executor payloads) pickle by reference.
        world = build_fish_world(args.agents, seed=args.seed, fish_class=Fish)
    else:
        world = build_ring_world(args.agents, seed=args.seed)

    session = (
        Simulation.from_agents(world)
        .with_executor(args.executor)
        .with_history(
            args.path,
            checkpoint_every=args.checkpoint_every,
            overwrite=args.overwrite,
        )
    )
    with session:
        result = session.run(args.ticks)

    history = History.open(args.path)
    store = history.store
    print(result.summary())
    print(
        f"recorded ticks {history.base_tick}..{history.last_tick} -> {args.path} "
        f"({len(store.delta_ticks())} deltas, {len(store.checkpoint_ticks())} "
        f"checkpoints, {store.size_bytes():,} bytes)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
