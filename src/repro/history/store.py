"""The on-disk layout of a recorded trajectory: checkpoints + delta segments.

A history store is a directory::

    <path>/
        manifest.json        # format version, cadence, retention, metadata
        deltas.seg           # append-only columnar per-tick delta frames
        deltas.idx           # one JSON line per frame: tick, offset, length
        checkpoints/
            cp_0000000000.bin    # full state snapshot at the base tick
            cp_0000000016.bin    # ... and every ``checkpoint_every`` ticks

Checkpoints hold the complete simulation state at one tick (every agent,
the id allocator, the seed); deltas hold only what changed from the previous
tick — the transactional/analytical split of the store.  Both kinds of frame
go through the checkpoint machinery's codec
(:func:`repro.brace.checkpoint.serialize_snapshot`), so the replay layer
reads back exactly the Python values the recorder saw.

The store knows nothing about agents or worlds: it moves opaque payloads and
maintains the tick index, truncation (rewinds after recovery) and retention
thinning.  The schema of the payloads is owned by
:mod:`repro.history.recorder` (writing) and :mod:`repro.history.query`
(reading).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.brace.checkpoint import deserialize_snapshot, serialize_snapshot
from repro.core.errors import HistoryError

#: On-disk format tag; bump when the layout or payload schema changes.
FORMAT = "repro-history/1"

_MANIFEST = "manifest.json"
_SEGMENT = "deltas.seg"
_INDEX = "deltas.idx"
_CHECKPOINT_DIR = "checkpoints"


def _checkpoint_name(tick: int) -> str:
    return f"cp_{tick:010d}.bin"


class HistoryStore:
    """One recorded trajectory on disk.

    Create a fresh store with :meth:`create` (the recorder's path) or attach
    to an existing one with :meth:`open` (the query layer's path).  A store
    object may both append and read; appends are flushed eagerly so a
    concurrently opened reader always sees every completed tick.
    """

    def __init__(self, path: Path, manifest: dict[str, Any]):
        self.path = Path(path)
        self._manifest = manifest
        self._index: list[tuple[int, int, int]] = []  # (tick, offset, length)
        self._tick_lookup: dict[int, tuple[int, int]] = {}
        self._segment_handle = None
        self._load_index()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        checkpoint_every: int = 16,
        max_ticks: int | None = None,
        thin_to_checkpoints: bool = False,
        overwrite: bool = False,
    ) -> "HistoryStore":
        """Initialise an empty store at ``path`` (created if missing).

        Refuses to clobber an existing store unless ``overwrite=True`` —
        recorded trajectories are measurement data, not scratch space.
        """
        if checkpoint_every < 1:
            raise HistoryError("checkpoint_every must be at least 1")
        if max_ticks is not None and max_ticks < 1:
            raise HistoryError("max_ticks must be at least 1 (or None to keep everything)")
        path = Path(path)
        manifest_path = path / _MANIFEST
        if manifest_path.exists():
            if not overwrite:
                raise HistoryError(
                    f"{path} already holds a recorded history; pass overwrite=True "
                    "to replace it or record into a fresh directory"
                )
            existing = cls.open(path)
            existing._delete_contents()
        path.mkdir(parents=True, exist_ok=True)
        (path / _CHECKPOINT_DIR).mkdir(exist_ok=True)
        manifest = {
            "format": FORMAT,
            "checkpoint_every": int(checkpoint_every),
            "max_ticks": max_ticks if max_ticks is None else int(max_ticks),
            "thin_to_checkpoints": bool(thin_to_checkpoints),
            "base_tick": None,
            "last_tick": None,
            "bounds": None,
            "seed": None,
            "provenance": None,
        }
        store = cls(path, manifest)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, path: str | Path) -> "HistoryStore":
        """Attach to the store at ``path``."""
        path = Path(path)
        manifest_path = path / _MANIFEST
        if not manifest_path.exists():
            raise HistoryError(f"no recorded history at {path} (missing {_MANIFEST})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise HistoryError(f"unreadable history manifest at {manifest_path}: {error}")
        if manifest.get("format") != FORMAT:
            raise HistoryError(
                f"history at {path} uses format {manifest.get('format')!r}; "
                f"this build reads {FORMAT!r}"
            )
        return cls(path, manifest)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict[str, Any]:
        """The store's metadata (a live reference — use :meth:`set_metadata`)."""
        return self._manifest

    def set_metadata(self, **updates: Any) -> None:
        """Merge ``updates`` into the manifest and persist it."""
        self._manifest.update(updates)
        self._write_manifest()

    def _write_manifest(self) -> None:
        (self.path / _MANIFEST).write_text(json.dumps(self._manifest, indent=2))

    # ------------------------------------------------------------------
    # Delta segment
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        index_path = self.path / _INDEX
        self._index = []
        self._tick_lookup = {}
        if not index_path.exists():
            return
        for line in index_path.read_text().splitlines():
            if not line.strip():
                continue
            entry = json.loads(line)
            record = (int(entry["tick"]), int(entry["offset"]), int(entry["length"]))
            self._index.append(record)
            self._tick_lookup[record[0]] = (record[1], record[2])

    def _segment(self):
        if self._segment_handle is None:
            self._segment_handle = open(self.path / _SEGMENT, "ab")
        return self._segment_handle

    def append_delta(self, tick: int, record: dict[str, Any]) -> int:
        """Append one per-tick delta frame; returns its size in bytes.

        Ticks must be appended in strictly increasing order; the recorder is
        responsible for truncating first when a recovery rewound the run.
        """
        if self._index and tick <= self._index[-1][0]:
            raise HistoryError(
                f"delta for tick {tick} appended out of order "
                f"(last recorded tick is {self._index[-1][0]}); truncate first"
            )
        frame = serialize_snapshot(record)
        handle = self._segment()
        offset = handle.tell()
        handle.write(frame)
        handle.flush()
        entry = (int(tick), offset, len(frame))
        self._index.append(entry)
        self._tick_lookup[entry[0]] = (offset, len(frame))
        with open(self.path / _INDEX, "a") as index_handle:
            index_handle.write(
                json.dumps({"tick": entry[0], "offset": offset, "length": len(frame)}) + "\n"
            )
        return len(frame)

    def has_delta(self, tick: int) -> bool:
        """True when a delta frame for ``tick`` is retained."""
        return tick in self._tick_lookup

    def read_delta(self, tick: int) -> dict[str, Any]:
        """Load the delta frame for ``tick``."""
        try:
            offset, length = self._tick_lookup[tick]
        except KeyError:
            raise HistoryError(
                f"no delta recorded for tick {tick} "
                "(outside the recorded range, or thinned by retention)"
            ) from None
        with open(self.path / _SEGMENT, "rb") as handle:
            handle.seek(offset)
            frame = handle.read(length)
        return deserialize_snapshot(frame)

    def iter_deltas(self, start_tick: int, end_tick: int) -> Iterator[dict[str, Any]]:
        """Yield the delta frames for ``start_tick..end_tick`` inclusive, in order."""
        for tick in range(start_tick, end_tick + 1):
            yield self.read_delta(tick)

    def delta_ticks(self) -> list[int]:
        """Every tick with a retained delta frame, ascending."""
        return sorted(self._tick_lookup)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def write_checkpoint(self, tick: int, payload: dict[str, Any]) -> int:
        """Persist a full-state checkpoint at ``tick``; returns bytes written."""
        frame = serialize_snapshot(payload)
        target = self.path / _CHECKPOINT_DIR / _checkpoint_name(tick)
        target.write_bytes(frame)
        return len(frame)

    def read_checkpoint(self, tick: int) -> dict[str, Any]:
        """Load the checkpoint taken at exactly ``tick``."""
        target = self.path / _CHECKPOINT_DIR / _checkpoint_name(tick)
        if not target.exists():
            raise HistoryError(f"no checkpoint recorded at tick {tick}")
        return deserialize_snapshot(target.read_bytes())

    def checkpoint_ticks(self) -> list[int]:
        """Every tick with a full checkpoint, ascending."""
        directory = self.path / _CHECKPOINT_DIR
        if not directory.exists():
            return []
        ticks = []
        for name in os.listdir(directory):
            if name.startswith("cp_") and name.endswith(".bin"):
                ticks.append(int(name[3:-4]))
        return sorted(ticks)

    def nearest_checkpoint_at_or_before(self, tick: int) -> int:
        """The latest checkpoint tick ``<= tick``."""
        candidates = [cp for cp in self.checkpoint_ticks() if cp <= tick]
        if not candidates:
            raise HistoryError(f"no checkpoint at or before tick {tick}")
        return candidates[-1]

    # ------------------------------------------------------------------
    # Truncation and retention
    # ------------------------------------------------------------------
    def truncate_after(self, tick: int) -> None:
        """Drop every delta and checkpoint recorded for ticks ``> tick``.

        Used when checkpoint recovery rewinds the run: the re-executed ticks
        are recorded afresh over the truncated tail.
        """
        for cp_tick in self.checkpoint_ticks():
            if cp_tick > tick:
                (self.path / _CHECKPOINT_DIR / _checkpoint_name(cp_tick)).unlink()
        if self._index and self._index[-1][0] > tick:
            self._compact(keep=lambda delta_tick: delta_tick <= tick)
        last = self._manifest.get("last_tick")
        if last is not None and last > tick:
            self.set_metadata(last_tick=tick)

    def thin_through(self, tick: int) -> int:
        """Drop delta frames for ticks ``<= tick``; checkpoints are kept.

        Returns the number of frames dropped.  The caller (the recorder's
        retention policy) must pick ``tick`` to be a checkpoint tick so
        every retained tick stays replayable from some checkpoint.
        """
        before = len(self._index)
        if any(delta_tick <= tick for delta_tick, _, _ in self._index):
            self._compact(keep=lambda delta_tick: delta_tick > tick)
        return before - len(self._index)

    def _compact(self, keep) -> None:
        """Rewrite the segment + index, keeping only frames where ``keep(tick)``."""
        if self._segment_handle is not None:
            self._segment_handle.close()
            self._segment_handle = None
        retained: list[tuple[int, bytes]] = []
        segment_path = self.path / _SEGMENT
        if segment_path.exists():
            with open(segment_path, "rb") as handle:
                for tick, offset, length in self._index:
                    if keep(tick):
                        handle.seek(offset)
                        retained.append((tick, handle.read(length)))
        new_index: list[tuple[int, int, int]] = []
        with open(segment_path, "wb") as handle:
            for tick, frame in retained:
                new_index.append((tick, handle.tell(), len(frame)))
                handle.write(frame)
        with open(self.path / _INDEX, "w") as index_handle:
            for tick, offset, length in new_index:
                index_handle.write(
                    json.dumps({"tick": tick, "offset": offset, "length": length}) + "\n"
                )
        self._index = new_index
        self._tick_lookup = {tick: (offset, length) for tick, offset, length in new_index}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total bytes the store occupies on disk."""
        total = 0
        for root, _dirs, files in os.walk(self.path):
            for name in files:
                total += os.path.getsize(os.path.join(root, name))
        return total

    def _delete_contents(self) -> None:
        """Remove every file the store owns (used by create(overwrite=True))."""
        self.close()
        for name in (_MANIFEST, _SEGMENT, _INDEX):
            target = self.path / name
            if target.exists():
                target.unlink()
        directory = self.path / _CHECKPOINT_DIR
        if directory.exists():
            for name in os.listdir(directory):
                (directory / name).unlink()

    def close(self) -> None:
        """Flush and release the append handle (reading stays possible)."""
        if self._segment_handle is not None:
            self._segment_handle.close()
            self._segment_handle = None

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<HistoryStore path={str(self.path)!r} deltas={len(self._index)} "
            f"checkpoints={len(self.checkpoint_ticks())}>"
        )
