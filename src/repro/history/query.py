"""Reading a recorded trajectory back: time travel and analytics.

:class:`History` is the query surface over a :class:`~repro.history.store
.HistoryStore`.  Its core operation is **time travel**: ``state_at(t)``
reconstructs the agent states after tick ``t`` executed, bit-identical to
what a fresh run truncated at ``t`` would report — the nearest checkpoint
at or before ``t`` is loaded and the delta frames ``(checkpoint, t]`` are
rolled forward.  Everything else is built on top of that one primitive:

* sequential replay (:meth:`History.walk`), which pays for each delta once
  instead of re-rolling from a checkpoint per tick;
* per-agent time series (:meth:`History.series`) and cross-agent per-tick
  aggregates (:meth:`History.aggregate_series`), with windowed reductions
  (:meth:`History.window_aggregate`) for Table 2-style statistics;
* cross-run comparison (:meth:`History.diff`), reporting the first
  divergent tick and a per-agent field-level delta at that tick.

A history only answers for ticks it retains: requests outside the recorded
range, or for ticks whose deltas a retention policy thinned away, raise
:class:`~repro.core.errors.HistoryError` (checkpoint ticks always stay
queryable — thinning never drops checkpoints).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.core.agent import Agent
from repro.core.errors import HistoryError
from repro.core.ordering import agent_sort_key
from repro.core.world import World
from repro.history.recorder import unpack_column
from repro.history.store import HistoryStore
from repro.spatial.bbox import BBox

#: Named reducers accepted wherever a ``reduce`` argument takes a string.
REDUCERS: dict[str, Callable[[list[float]], float]] = {
    "mean": lambda values: statistics.fmean(values) if values else 0.0,
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "count": lambda values: float(len(values)),
}


def _reducer(reduce: str | Callable[[list[Any]], Any]) -> Callable[[list[Any]], Any]:
    if callable(reduce):
        return reduce
    try:
        return REDUCERS[reduce]
    except KeyError:
        known = ", ".join(sorted(REDUCERS))
        raise HistoryError(
            f"unknown reducer {reduce!r}; expected a callable or one of: {known}"
        ) from None


@dataclass(frozen=True)
class HistoryDiff:
    """The comparison of two recorded trajectories.

    ``first_divergent_tick`` is the earliest compared tick at which the two
    runs' agent states differ (None when they agree on every compared tick);
    ``agent_deltas`` reports, for that tick, each divergent agent's fields as
    ``{field: (value_in_left, value_in_right)}``, and ``only_in_left`` /
    ``only_in_right`` the agents present in one run but not the other.
    """

    ticks_compared: tuple[int, int]
    first_divergent_tick: int | None = None
    agent_deltas: dict[Any, dict[str, tuple[Any, Any]]] = field(default_factory=dict)
    only_in_left: tuple[Any, ...] = ()
    only_in_right: tuple[Any, ...] = ()

    @property
    def identical(self) -> bool:
        """True when both runs agree bit for bit over the compared range."""
        return self.first_divergent_tick is None

    def summary(self) -> str:
        """A short human-readable report of the comparison."""
        start, stop = self.ticks_compared
        if self.identical:
            return f"identical over ticks {start}..{stop}"
        lines = [
            f"first divergence at tick {self.first_divergent_tick} "
            f"(compared ticks {start}..{stop})"
        ]
        if self.only_in_left:
            lines.append(f"  agents only in left: {list(self.only_in_left)}")
        if self.only_in_right:
            lines.append(f"  agents only in right: {list(self.only_in_right)}")
        for agent_id in sorted(self.agent_deltas, key=agent_sort_key):
            deltas = self.agent_deltas[agent_id]
            rendered = ", ".join(
                f"{name}: {left!r} != {right!r}" for name, (left, right) in deltas.items()
            )
            lines.append(f"  agent {agent_id}: {rendered}")
        return "\n".join(lines)


class History:
    """Query surface over one recorded trajectory."""

    def __init__(self, store: HistoryStore):
        self.store = store

    @classmethod
    def open(cls, path: str | Path) -> "History":
        """Attach to the recorded trajectory at ``path``."""
        return cls(HistoryStore.open(path))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """Directory the trajectory is stored in."""
        return self.store.path

    @property
    def base_tick(self) -> int:
        """Tick at which recording began (the base checkpoint's tick)."""
        base = self.store.manifest.get("base_tick")
        if base is None:
            raise HistoryError(f"the store at {self.path} has recorded nothing yet")
        return base

    @property
    def last_tick(self) -> int:
        """The most recent recorded tick."""
        last = self.store.manifest.get("last_tick")
        if last is None:
            raise HistoryError(f"the store at {self.path} has recorded nothing yet")
        return last

    @property
    def provenance(self) -> dict[str, Any] | None:
        """What produced the run (model, config, seed, backend), if recorded."""
        return self.store.manifest.get("provenance")

    def ticks(self) -> list[int]:
        """Every tick :meth:`state_at` can answer for, ascending.

        The base tick and every checkpoint tick are always included;
        delta-reachable ticks are those with a contiguous delta chain back
        to some checkpoint (retention thinning can remove them).
        """
        reachable = set(self.store.checkpoint_ticks())
        delta_ticks = set(self.store.delta_ticks())
        for checkpoint in sorted(reachable):
            tick = checkpoint + 1
            while tick in delta_ticks:
                reachable.add(tick)
                tick += 1
        return sorted(tick for tick in reachable if tick <= self.last_tick)

    # ------------------------------------------------------------------
    # Time travel
    # ------------------------------------------------------------------
    def state_at(self, tick: int) -> dict[Any, dict[str, Any]]:
        """Agent states after tick ``tick`` executed, keyed by agent id.

        Bit-identical to what ``Simulation.states()`` reports after running
        exactly ``tick - base_tick`` ticks from the recorded initial state —
        the replay guarantee the differential tests enforce.
        """
        agents = self._agents_at(tick)
        return {
            agent_id: agents[agent_id].state_dict()
            for agent_id in sorted(agents, key=repr)
        }

    def world_at(self, tick: int) -> World:
        """A reconstructed :class:`World` as of tick ``tick``.

        State fields are authoritative (bit-identical to the recorded run);
        effect accumulators hold whatever the recording captured and are
        reset by the next tick's map phase anyway.
        """
        agents = self._agents_at(tick)
        manifest = self.store.manifest
        bounds = None
        if manifest.get("bounds") is not None:
            bounds = BBox(tuple(tuple(interval) for interval in manifest["bounds"]))
        world = World(bounds=bounds, seed=manifest.get("seed") or 0)
        world.tick = tick
        for agent_id in sorted(agents, key=repr):
            world.add_agent(agents[agent_id])
        world._next_id = self._next_id_at(tick)
        return world

    def walk(
        self, start: int | None = None, stop: int | None = None
    ) -> Iterator[tuple[int, dict[Any, dict[str, Any]]]]:
        """Yield ``(tick, states)`` for every tick in ``[start, stop]``.

        Sequential replay: the checkpoint is loaded once and each delta is
        applied exactly once, so walking a range costs O(range) rather than
        O(range * cadence) repeated ``state_at`` calls would.
        """
        start = self.base_tick if start is None else start
        stop = self.last_tick if stop is None else stop
        self._check_range(start)
        self._check_range(stop)
        if stop < start:
            return
        agents = self._agents_at(start)
        yield start, {
            agent_id: agents[agent_id].state_dict()
            for agent_id in sorted(agents, key=repr)
        }
        for tick in range(start + 1, stop + 1):
            self._apply_delta(agents, self.store.read_delta(tick))
            yield tick, {
                agent_id: agents[agent_id].state_dict()
                for agent_id in sorted(agents, key=repr)
            }

    # ------------------------------------------------------------------
    # Analytics
    # ------------------------------------------------------------------
    def series(
        self,
        agent_id: Any,
        fields: str | list[str],
        start: int | None = None,
        stop: int | None = None,
    ) -> list[tuple[int, Any]]:
        """One agent's field value(s) per tick: ``[(tick, value), ...]``.

        Ticks where the agent does not exist (before it spawned, after it
        was killed) are skipped.  Passing a list of field names yields a
        dict of values per tick instead of a scalar.
        """
        single = isinstance(fields, str)
        names = [fields] if single else list(fields)
        out: list[tuple[int, Any]] = []
        for tick, states in self.walk(start, stop):
            state = states.get(agent_id)
            if state is None:
                continue
            out.append((tick, state[names[0]] if single else {n: state[n] for n in names}))
        return out

    def aggregate_series(
        self,
        fields: str,
        reduce: str | Callable[[list[Any]], Any] = "mean",
        start: int | None = None,
        stop: int | None = None,
        where: Callable[[Any, dict[str, Any]], bool] | None = None,
    ) -> list[tuple[int, Any]]:
        """Per-tick reduction of one field across agents.

        ``reduce`` is a named reducer (``"mean"``, ``"sum"``, ``"min"``,
        ``"max"``, ``"count"``) or any callable taking the tick's list of
        values.  ``where(agent_id, state)`` optionally filters which agents
        contribute — e.g. one lane of the traffic ring.
        """
        reducer = _reducer(reduce)
        out: list[tuple[int, Any]] = []
        for tick, states in self.walk(start, stop):
            values = [
                state[fields]
                for agent_id, state in states.items()
                if where is None or where(agent_id, state)
            ]
            out.append((tick, reducer(values)))
        return out

    def window_aggregate(
        self,
        series: list[tuple[int, Any]],
        window: int,
        reduce: str | Callable[[list[Any]], Any] = "mean",
    ) -> list[tuple[int, Any]]:
        """Reduce a tick series over consecutive non-overlapping windows.

        Each output entry is ``(first tick of the window, reduced value)``;
        a trailing partial window is reduced over the ticks it has.
        """
        if window < 1:
            raise HistoryError("window must be at least 1 tick")
        reducer = _reducer(reduce)
        out: list[tuple[int, Any]] = []
        for index in range(0, len(series), window):
            chunk = series[index : index + window]
            out.append((chunk[0][0], reducer([value for _, value in chunk])))
        return out

    def diff(
        self,
        other: "History",
        start: int | None = None,
        stop: int | None = None,
    ) -> HistoryDiff:
        """Compare two trajectories tick by tick over their common range.

        Returns a :class:`HistoryDiff` with the first divergent tick and a
        per-agent, per-field delta report at that tick — the cross-run
        debugging primitive: two runs that should be bit-identical either
        come back ``identical``, or the report pinpoints exactly where and
        how they split.
        """
        start = max(self.base_tick, other.base_tick) if start is None else start
        stop = min(self.last_tick, other.last_tick) if stop is None else stop
        if stop < start:
            raise HistoryError(
                f"the trajectories share no ticks to compare "
                f"({self.base_tick}..{self.last_tick} vs "
                f"{other.base_tick}..{other.last_tick})"
            )
        mine = self.walk(start, stop)
        theirs = other.walk(start, stop)
        for (tick, left), (_, right) in zip(mine, theirs):
            if left == right:
                continue
            only_left = tuple(sorted(set(left) - set(right), key=agent_sort_key))
            only_right = tuple(sorted(set(right) - set(left), key=agent_sort_key))
            deltas: dict[Any, dict[str, tuple[Any, Any]]] = {}
            for agent_id in set(left) & set(right):
                if left[agent_id] == right[agent_id]:
                    continue
                deltas[agent_id] = {
                    name: (left[agent_id][name], right[agent_id].get(name))
                    for name in left[agent_id]
                    if left[agent_id][name] != right[agent_id].get(name)
                }
            return HistoryDiff(
                ticks_compared=(start, stop),
                first_divergent_tick=tick,
                agent_deltas=deltas,
                only_in_left=only_left,
                only_in_right=only_right,
            )
        return HistoryDiff(ticks_compared=(start, stop))

    # ------------------------------------------------------------------
    # Replay internals
    # ------------------------------------------------------------------
    def _check_range(self, tick: int) -> None:
        if not self.base_tick <= tick <= self.last_tick:
            raise HistoryError(
                f"tick {tick} is outside the recorded range "
                f"{self.base_tick}..{self.last_tick}"
            )

    def _agents_at(self, tick: int) -> dict[Any, Agent]:
        """Replay to ``tick``: nearest checkpoint + contiguous deltas."""
        self._check_range(tick)
        checkpoint_tick = self.store.nearest_checkpoint_at_or_before(tick)
        payload = self.store.read_checkpoint(checkpoint_tick)
        agents = {agent.agent_id: agent for agent in payload["agents"]}
        for delta_tick in range(checkpoint_tick + 1, tick + 1):
            self._apply_delta(agents, self.store.read_delta(delta_tick))
        return agents

    def _next_id_at(self, tick: int) -> int:
        checkpoint_tick = self.store.nearest_checkpoint_at_or_before(tick)
        if checkpoint_tick == tick:
            return self.store.read_checkpoint(checkpoint_tick)["next_id"]
        return self.store.read_delta(tick)["next_id"]

    @staticmethod
    def _apply_delta(agents: dict[Any, Agent], delta: dict[str, Any]) -> None:
        for agent_id in delta["killed"]:
            agents.pop(agent_id, None)
        for spawned in delta["spawned"]:
            agents[spawned.agent_id] = spawned
        for group in delta["groups"]:
            fields = group["fields"]
            columns = {name: unpack_column(group["columns"][name]) for name in fields}
            for row, agent_id in enumerate(group["ids"]):
                agents[agent_id].set_state_dict(
                    {name: columns[name][row] for name in fields}
                )

    def __repr__(self) -> str:
        recorded = self.store.manifest.get("base_tick")
        span = f"{self.base_tick}..{self.last_tick}" if recorded is not None else "empty"
        return f"<History path={str(self.path)!r} ticks={span}>"
