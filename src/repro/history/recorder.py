"""Turning a live run into a persisted trajectory, one tick at a time.

The :class:`HistoryRecorder` sits behind the session layer's per-tick loop:
``start()`` captures the initial world as the base checkpoint, then every
``record()`` call diffs the (already synced) world against the recorder's
shadow of the previous tick and appends a columnar delta frame — killed ids,
spawned agent clones, and per-class columns of every changed agent's state.
Every ``checkpoint_every`` ticks a full checkpoint is written so replay
never rolls forward more than one cadence worth of deltas.

Two invariants make the replay guarantee hold:

* **Continuity** — ``record()`` demands ``world.tick`` be exactly one past
  the last recorded tick.  Ticks executed outside the recording session
  (e.g. directly through the runtime escape hatch) leave a gap the store
  cannot represent, so they raise :class:`~repro.core.errors.HistoryError`
  immediately instead of silently corrupting the trajectory.
* **Rewind on recovery** — checkpoint recovery rewinds the run; the
  recorder (registered as a runtime recovery listener) truncates the store
  back to the restored tick and re-shadows the restored world, so the
  re-executed ticks overwrite the lost tail.

Agent state is persisted as instance *clones*, never class objects:
compiled BRASIL agent classes are dynamic and not picklable by reference,
but their instances pickle through the compiler's class-spec registry.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import HistoryError
from repro.core.ordering import agent_sort_key
from repro.core.soa import PackedColumn, pack_cells, unpack_cells
from repro.core.world import World
from repro.history.store import HistoryStore


def _pack_column(values: list[Any]) -> PackedColumn:
    """Pack one field's values through the shared delta-cell codec.

    Delegates to :func:`repro.core.soa.pack_cells` — the same column layout
    the resident-shard IPC frames use — so bool columns pack as bit arrays
    and mixed columns get per-cell kind tags with a pickle escape list
    instead of falling back to a plain Python list.  The round trip is
    bit-identical for arbitrary cells, which is exactly the replay
    guarantee's requirement.
    """
    return pack_cells(values)


def unpack_column(column: Any) -> list[Any]:
    """Restore a column written by :func:`_pack_column` to Python values.

    Accepts all three on-disk generations: :class:`PackedColumn` (current),
    bare ``float64``/``int64`` arrays (earlier stores) and plain lists
    (the original format), so old trajectories stay replayable.
    """
    if isinstance(column, PackedColumn):
        return unpack_cells(column)
    if isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


class HistoryRecorder:
    """Streams a run's ticks into a :class:`HistoryStore`."""

    def __init__(self, store: HistoryStore):
        self.store = store
        self._started = False
        self._last_tick: int | None = None
        self._base_tick: int | None = None
        #: Shadow of the previous recorded tick: id -> state dict / class name.
        self._shadow_states: dict[Any, dict[str, Any]] = {}
        self._shadow_classes: dict[Any, str] = {}

    @property
    def started(self) -> bool:
        """True once :meth:`start` has captured the base checkpoint."""
        return self._started

    @property
    def last_tick(self) -> int | None:
        """The most recently recorded tick (None before :meth:`start`)."""
        return self._last_tick

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, world: World, provenance: dict[str, Any] | None = None) -> None:
        """Capture ``world`` as the trajectory's base state.

        The world's current tick becomes the base tick; ``provenance`` (a
        JSON-safe description of what produced the run) is stored in the
        manifest so a replayed trajectory knows where it came from.
        """
        if self._started:
            raise HistoryError("this recorder has already started recording")
        base = world.tick
        bounds = None
        if world.bounds is not None:
            bounds = [list(interval) for interval in world.bounds.intervals]
        self.store.set_metadata(
            base_tick=base,
            last_tick=base,
            seed=world.seed,
            bounds=bounds,
            provenance=provenance,
        )
        self._write_checkpoint(world)
        self._shadow(world)
        self._base_tick = base
        self._last_tick = base
        self._started = True

    def record(self, world: World) -> None:
        """Persist the tick that just executed (the world must be synced).

        ``world.tick`` must be exactly ``last_tick + 1`` — the continuity
        invariant that makes replay chains contiguous.
        """
        if not self._started:
            raise HistoryError("record() called before start()")
        assert self._last_tick is not None and self._base_tick is not None
        tick = world.tick
        if tick != self._last_tick + 1:
            raise HistoryError(
                f"recording gap: the world is at tick {tick} but the last recorded "
                f"tick is {self._last_tick}; ticks executed outside the recording "
                "session (e.g. directly through the runtime escape hatch) cannot "
                "be reconstructed"
            )
        self.store.append_delta(tick, self._build_delta(world))
        manifest = self.store.manifest
        if (tick - self._base_tick) % manifest["checkpoint_every"] == 0:
            self._write_checkpoint(world)
            if manifest["thin_to_checkpoints"]:
                # Checkpoint-only retention: everything up to (and including)
                # the fresh checkpoint is now reachable without deltas.
                self.store.thin_through(tick)
        self._apply_max_ticks(tick)
        self.store.set_metadata(last_tick=tick)
        self._shadow(world)
        self._last_tick = tick

    def handle_restore(self, world: World, restored_tick: int, failed_tick: int) -> None:
        """Rewind the store after checkpoint recovery restored ``world``.

        Registered on :attr:`BraceRuntime.recovery_listeners`; the ticks
        between ``restored_tick`` and ``failed_tick`` are about to be
        re-executed and re-recorded, so their stale frames are dropped.
        """
        if not self._started:
            return
        assert self._base_tick is not None
        if restored_tick < self._base_tick:
            raise HistoryError(
                f"recovery restored tick {restored_tick}, before recording "
                f"began at tick {self._base_tick}; the trajectory cannot rewind "
                "past its base checkpoint"
            )
        self.store.truncate_after(restored_tick)
        self._shadow(world)
        self._last_tick = restored_tick

    def close(self) -> None:
        """Flush and release the store's append handle."""
        self.store.close()

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    def _shadow(self, world: World) -> None:
        self._shadow_states = {
            agent.agent_id: agent.state_dict() for agent in world.agents()
        }
        self._shadow_classes = {
            agent.agent_id: type(agent).__name__ for agent in world.agents()
        }

    def _write_checkpoint(self, world: World) -> None:
        self.store.write_checkpoint(
            world.tick,
            {
                "tick": world.tick,
                "next_id": world.next_agent_id,
                "seed": world.seed,
                "agents": [agent.clone() for agent in world.agents()],
            },
        )

    def _build_delta(self, world: World) -> dict[str, Any]:
        killed = sorted(
            (agent_id for agent_id in self._shadow_states if not world.has_agent(agent_id)),
            key=agent_sort_key,
        )
        spawned = []
        changed_by_class: dict[str, tuple[list[Any], list[dict[str, Any]]]] = {}
        for agent in world.agents():
            agent_id = agent.agent_id
            previous = self._shadow_states.get(agent_id)
            if previous is None:
                spawned.append(agent.clone())
                continue
            state = agent.state_dict()
            if state != previous:
                ids, rows = changed_by_class.setdefault(
                    type(agent).__name__, ([], [])
                )
                ids.append(agent_id)
                rows.append(state)
        groups = []
        for class_name in sorted(changed_by_class):
            ids, rows = changed_by_class[class_name]
            fields = list(rows[0])
            groups.append(
                {
                    "class": class_name,
                    "ids": ids,
                    "fields": fields,
                    "columns": {
                        name: _pack_column([row[name] for row in rows])
                        for name in fields
                    },
                }
            )
        return {
            "tick": world.tick,
            "next_id": world.next_agent_id,
            "killed": killed,
            "spawned": spawned,
            "groups": groups,
        }

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def _apply_max_ticks(self, tick: int) -> None:
        """Thin old deltas once the trajectory exceeds ``max_ticks``.

        The cutoff rounds *down* to a checkpoint tick: every retained tick
        keeps a complete replay chain (checkpoint + contiguous deltas), so
        thinning can never break the bit-identical guarantee — only narrow
        the range it covers.
        """
        max_ticks = self.store.manifest["max_ticks"]
        if max_ticks is None:
            return
        floor = tick - max_ticks
        if floor <= (self._base_tick or 0):
            return
        candidates = [cp for cp in self.store.checkpoint_ticks() if cp <= floor]
        if candidates:
            self.store.thin_through(candidates[-1])

    def __repr__(self) -> str:
        return f"<HistoryRecorder last_tick={self._last_tick} store={self.store!r}>"
