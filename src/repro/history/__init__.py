"""repro.history — the persistent, queryable tick-history store.

A recorded run becomes a directory of checkpoints and per-tick columnar
deltas (:class:`HistoryStore`), written live by a :class:`HistoryRecorder`
attached behind the session layer (``Simulation...with_history(path)``) and
read back through :class:`History`:

* **time travel** — ``History.state_at(t)`` reconstructs the agent states
  after tick ``t`` bit-identically to a fresh run truncated at ``t``, on
  every executor backend (the differential test harness in
  ``tests/history/`` enforces exactly this);
* **analytics** — per-agent time series, per-tick cross-agent aggregates,
  windowed reductions and cross-run diffs with a first-divergent-tick
  report;
* **retention** — a checkpoint cadence plus optional ``max_ticks`` /
  checkpoint-only thinning bound the store's size without ever breaking a
  retained tick's replay chain.

>>> from repro.api import Simulation
>>> from repro.history import History                  # doctest: +SKIP
>>> sim = Simulation.from_agents(world).with_history("run_a")  # doctest: +SKIP
>>> sim.run(100)                                       # doctest: +SKIP
>>> History.open("run_a").state_at(42)                 # doctest: +SKIP
"""

from repro.history.query import History, HistoryDiff, REDUCERS
from repro.history.recorder import HistoryRecorder
from repro.history.store import HistoryStore

__all__ = [
    "History",
    "HistoryDiff",
    "HistoryRecorder",
    "HistoryStore",
    "REDUCERS",
]
