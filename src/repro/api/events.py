"""Events yielded by a streaming :class:`~repro.api.Simulation` run.

One :class:`TickEvent` is produced per executed tick.  When the tick closed
an epoch, the event additionally carries the epoch's
:class:`~repro.brace.metrics.EpochStatistics` — including whether the master
rebalanced the partitioning or took a coordinated checkpoint at that
boundary — so a consumer pulling ``sim.stream(...)`` sees every scheduling
decision the runtime made, in order, without polling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.brace.metrics import BraceTickStatistics, EpochStatistics


@dataclass(frozen=True)
class TickEvent:
    """Everything observable about one executed tick.

    Instances are immutable: observers receive the same event object the
    stream yields, and nothing an observer does can corrupt the run.
    """

    #: Tick number that was executed (the world is now at ``tick + 1``).
    tick: int
    #: Per-tick measurements (virtual/wall time, bytes, migrations, IPC).
    stats: BraceTickStatistics
    #: Epoch statistics when this tick closed an epoch boundary, else None.
    epoch: EpochStatistics | None = None
    #: Agent states after the tick, keyed by agent id — only populated when
    #: the stream was started with ``snapshot_states=True``.  On the process
    #: backend this forces a per-tick world sync (a deliberately world-sized
    #: transfer), so it is off by default.
    states: dict[Any, dict[str, Any]] | None = None
    #: True when this tick was appended to an attached history store
    #: (``with_history(path)``) before observers fired — the tick is already
    #: replayable via ``History.state_at(event.tick + 1)`` at this point.
    persisted: bool = False

    @property
    def is_epoch_boundary(self) -> bool:
        """True when this tick closed an epoch."""
        return self.epoch is not None

    @property
    def rebalanced(self) -> bool:
        """True when the master repartitioned at this tick's epoch boundary."""
        return self.epoch is not None and self.epoch.rebalanced

    @property
    def checkpointed(self) -> bool:
        """True when a coordinated checkpoint was taken at this boundary."""
        return self.epoch is not None and self.epoch.checkpointed

    @property
    def num_agents(self) -> int:
        """Number of agents that were simulated during this tick."""
        return self.stats.num_agents

    def __repr__(self) -> str:  # keep streams readable in logs/doctests
        flags = []
        if self.rebalanced:
            flags.append("rebalanced")
        if self.checkpointed:
            flags.append("checkpointed")
        suffix = (" " + ",".join(flags)) if flags else ""
        return f"<TickEvent tick={self.tick} agents={self.stats.num_agents}{suffix}>"
