"""repro.api — the unified session layer over the whole engine.

One front door for every workload: a :class:`Simulation` session is
constructed from Python agents (:meth:`Simulation.from_agents`) or BRASIL
source (:meth:`Simulation.from_script`), configured through a fluent,
eagerly validated builder, executed blocking (:meth:`Simulation.run`) or as
a stream of per-tick :class:`TickEvent`\\ s (:meth:`Simulation.stream`)
with observers and pause/resume, and always produces the same structured
:class:`RunResult` with full provenance.

>>> from repro.api import Simulation
>>> sim = (Simulation.from_script("class A { public state float x : (x + 1); #range[-2, 2]; }",
...                               num_agents=4, seed=1)
...        .with_executor("serial").with_workers(2))
>>> with sim:
...     result = sim.run(3)
>>> result.ticks
3
"""

from repro.api.builder import ConfigBuilder, FluentConfig
from repro.api.events import TickEvent
from repro.api.result import Provenance, RunResult, script_sha256
from repro.api.session import Simulation

__all__ = [
    "Simulation",
    "RunResult",
    "Provenance",
    "TickEvent",
    "ConfigBuilder",
    "FluentConfig",
    "script_sha256",
]
