"""One front door to the engine: the :class:`Simulation` session object.

A session wraps everything the repo previously exposed through three
disjoint entry points — ``BraceRuntime(world, config)`` for Python agents,
``repro.brasil.run_script`` for BRASIL scripts and the bespoke harness
functions — behind a single lifecycle:

1. **construct** from either source: :meth:`Simulation.from_agents` or
   :meth:`Simulation.from_script`;
2. **configure** with the fluent, eagerly validated ``with_*`` builder
   (:class:`~repro.api.builder.FluentConfig`), which compiles down to a
   :class:`~repro.brace.config.BraceConfig`;
3. **execute** — blocking :meth:`run`, or incrementally with
   :meth:`stream`, which yields one :class:`~repro.api.events.TickEvent`
   per tick and fires registered observers (:meth:`on_tick`,
   :meth:`on_epoch`, :meth:`on_checkpoint`);
4. **pause/resume** at any tick boundary — :meth:`pause` snapshots the
   world through the checkpoint machinery and releases the resident
   shards, :meth:`resume` restores bit-identically;
5. **close** (or leave a ``with`` block), which guarantees resident-shard
   teardown and executor shutdown.

Every way of executing returns (or leads to) the same structured
:class:`~repro.api.result.RunResult`, whose provenance records the model,
configuration, seed, backend and script hash that produced it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Iterable, Iterator, Sequence

from repro.api.builder import ConfigBuilder, FluentConfig
from repro.api.events import TickEvent
from repro.api.result import Provenance, RunResult, script_sha256
from repro.brace.checkpoint import CheckpointManager
from repro.brace.config import BraceConfig
from repro.brace.metrics import BraceRunMetrics, EpochStatistics
from repro.brace.runtime import BraceRuntime
from repro.brasil.compiler import CompiledScript
from repro.brasil.kernels import resolve_plan_backend
from repro.core.agent import Agent
from repro.core.context import resolve_spatial_backend
from repro.core.errors import BraceError, NodeLossError, SimulationSessionError
from repro.core.world import World
from repro.history.query import History
from repro.history.recorder import HistoryRecorder
from repro.history.store import HistoryStore
from repro.spatial.bbox import BBox


def _as_bbox(bounds: BBox | Sequence[Sequence[float]]) -> BBox:
    """Accept a BBox or a sequence of per-dimension (lo, hi) intervals."""
    if isinstance(bounds, BBox):
        return bounds
    return BBox(tuple(tuple(float(edge) for edge in interval) for interval in bounds))


class Simulation(FluentConfig):
    """A configurable, observable, pausable simulation session.

    Construct with :meth:`from_agents` or :meth:`from_script`; never
    directly.  Sessions are single-use: once closed they cannot run again
    (build a new one — construction is cheap and deterministic).
    """

    def __init__(self, world: World, source: str, config: BraceConfig | None = None):
        if source not in ("agents", "script"):
            raise SimulationSessionError(
                "construct sessions with Simulation.from_agents(...) or "
                "Simulation.from_script(...)"
            )
        self.world = world
        self._source = source
        self._builder = ConfigBuilder(config)
        self._compiled: CompiledScript | None = None
        self._script_hash: str | None = None
        self._script_label: str | None = None

        self._runtime: BraceRuntime | None = None
        self._closed = False
        self._paused = False
        self._streaming = False
        self._pause_requested = False
        self._active_stream: Generator[TickEvent, None, None] | None = None

        #: Pause snapshots ride on the same machinery as failure checkpoints.
        self._pause_points = CheckpointManager(keep_last=1)
        self._epoch_events: list[EpochStatistics] = []
        self._checkpoints_taken: list[int] = []
        self._tick_observers: list[Callable[[TickEvent], None]] = []
        self._epoch_observers: list[Callable[[EpochStatistics], None]] = []
        self._checkpoint_observers: list[Callable[[EpochStatistics], None]] = []
        self._recorder: HistoryRecorder | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_agents(
        cls,
        agents_or_world: World | Iterable[Agent],
        *,
        bounds: BBox | Sequence[Sequence[float]] | None = None,
        seed: int = 0,
        config: BraceConfig | None = None,
    ) -> "Simulation":
        """Create a session from a :class:`World` or an iterable of agents.

        A bare iterable of agents needs ``bounds`` (the BRACE runtime
        partitions space); a :class:`World` brings its own bounds and seed.
        ``config`` seeds the builder — every ``with_*`` call overrides it.
        """
        if isinstance(agents_or_world, World):
            world = agents_or_world
            if bounds is not None:
                world.bounds = _as_bbox(bounds)
        else:
            if bounds is None:
                raise BraceError(
                    "Simulation.from_agents needs bounds when given bare agents "
                    "(pass bounds=BBox(...) or a sequence of (lo, hi) intervals, "
                    "or construct a World yourself)"
                )
            world = World(bounds=_as_bbox(bounds), seed=seed)
            world.add_agents(agents_or_world)
        return cls(world, "agents", config)

    @classmethod
    def from_script(
        cls,
        script: str,
        *,
        config: BraceConfig | None = None,
        class_name: str | None = None,
        effect_inversion: str = "auto",
        use_index: bool = True,
        num_agents: int = 50,
        initial_states: Sequence[dict[str, Any]] | None = None,
        bounds: BBox | Sequence[Sequence[float]] | None = None,
        seed: int = 0,
    ) -> "Simulation":
        """Create a session by compiling a BRASIL script (path or source).

        Compilation happens here — eagerly — so script errors surface at
        construction.  The world is populated deterministically exactly as
        :func:`repro.brasil.runner.build_script_world` does, and the
        compiler's configuration overrides (reduce-pass structure, the
        optimizer's access path) are applied when the session starts; use
        :meth:`~repro.api.builder.FluentConfig.with_index` to force a
        different access path.
        """
        from repro.brasil.runner import (
            _compile_with_label,
            build_script_world,
            load_script_source,
        )

        source_text, label = load_script_source(script)
        compiled = _compile_with_label(
            source_text, label, class_name, effect_inversion, use_index
        )
        world = build_script_world(
            compiled,
            num_agents=num_agents,
            initial_states=initial_states,
            bounds=bounds,
            seed=seed,
        )
        session = cls(world, "script", config)
        session._compiled = compiled
        session._script_hash = script_sha256(source_text)
        session._script_label = label
        return session

    # ------------------------------------------------------------------
    # Lifecycle state
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True once the runtime has been materialized (first run/stream)."""
        return self._runtime is not None

    @property
    def paused(self) -> bool:
        """True while the session is paused (see :meth:`pause`)."""
        return self._paused

    @property
    def closed(self) -> bool:
        """True after :meth:`close` (or leaving the ``with`` block)."""
        return self._closed

    @property
    def tick(self) -> int:
        """The world's current tick."""
        return self.world.tick

    @property
    def compiled(self) -> CompiledScript | None:
        """The compilation result for script sessions, None for agent ones."""
        return self._compiled

    @property
    def config(self) -> BraceConfig:
        """The configuration the session runs (will run) with.

        Before the session starts this is computed from the builder (and,
        for script sessions, the compiler's overrides); afterwards it is the
        exact config the runtime was built with.
        """
        if self._runtime is not None:
            return self._runtime.config
        return self._compile_config()

    @property
    def metrics(self) -> BraceRunMetrics:
        """Statistics accumulated so far (empty before the first tick)."""
        if self._runtime is None:
            return BraceRunMetrics()
        return self._runtime.metrics

    @property
    def runtime(self) -> BraceRuntime:
        """The underlying :class:`BraceRuntime` — an escape hatch.

        Accessing it starts the session (freezing configuration), exactly
        like the first :meth:`run`/:meth:`stream` call does.  Ticks driven
        directly through the runtime still land in the session's metrics,
        but bypass its observers and pause bookkeeping.
        """
        self._check_open()
        return self._ensure_started()

    def _check_open(self) -> None:
        if self._closed:
            raise SimulationSessionError(
                "this session is closed; construct a new Simulation to run again"
            )

    def _check_not_started(self) -> None:
        self._check_open()
        if self._runtime is not None:
            raise SimulationSessionError(
                "configuration is frozen once the session has started; "
                "configure before the first run()/stream() call"
            )

    def _compile_config(self) -> BraceConfig:
        config = self._builder.build()
        if self._compiled is not None:
            from repro.brasil.runner import config_for_script

            derived = config_for_script(
                self._compiled, config, index=self._builder.index_choice
            )
            if self._builder.explicitly_set("cell_size"):
                # with_index(..., cell_size=...) wins over the optimizer's
                # access-path selection, as its docstring promises.
                derived = dataclasses.replace(derived, cell_size=config.cell_size)
                derived.validate()
            if self._builder.explicitly_set("spatial_backend"):
                # with_spatial_backend() likewise overrides the optimizer's
                # backend pin — forcing the interpreted path must stay
                # possible (it is how the columnar speedups are measured).
                derived = dataclasses.replace(
                    derived, spatial_backend=config.spatial_backend
                )
                derived.validate()
            config = derived
        return config

    def _ensure_started(self) -> BraceRuntime:
        if self._runtime is None:
            runtime = BraceRuntime(self.world, self._compile_config())
            runtime.epoch_listeners.append(self._epoch_events.append)
            self._runtime = runtime
            if self._recorder is not None:
                provenance = dataclasses.asdict(self._provenance(runtime))
                provenance["model"] = list(provenance["model"])
                self._recorder.start(self.world, provenance=provenance)
                runtime.recovery_listeners.append(self._recorder.handle_restore)
        return self._runtime

    # ------------------------------------------------------------------
    # History recording
    # ------------------------------------------------------------------
    def _attach_history(self, path: Any, **options: Any) -> "Simulation":
        """Create the store + recorder behind ``with_history`` (pre-start)."""
        if self._recorder is not None:
            raise SimulationSessionError(
                "a history store is already attached to this session "
                f"({self._recorder.store.path}); one session records one trajectory"
            )
        self._recorder = HistoryRecorder(HistoryStore.create(path, **options))
        return self

    @property
    def history(self) -> History:
        """Query surface over the attached history store.

        Live during the run — every tick is replayable the moment its
        observers fire — and still valid after :meth:`close`.  Requires a
        prior ``with_history(path)``.
        """
        if self._recorder is None:
            raise SimulationSessionError(
                "no history attached; configure with_history(path) before the "
                "session starts to record a queryable trajectory"
            )
        return History(self._recorder.store)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_tick(self, observer: Callable[[TickEvent], None]) -> "Simulation":
        """Call ``observer(event)`` after every executed tick."""
        self._tick_observers.append(observer)
        return self

    def on_epoch(self, observer: Callable[[EpochStatistics], None]) -> "Simulation":
        """Call ``observer(stats)`` after every completed epoch boundary."""
        self._epoch_observers.append(observer)
        return self

    def on_checkpoint(self, observer: Callable[[EpochStatistics], None]) -> "Simulation":
        """Call ``observer(stats)`` whenever a coordinated checkpoint is taken."""
        self._checkpoint_observers.append(observer)
        return self

    def unsubscribe(self, observer: Callable[..., None]) -> "Simulation":
        """Remove ``observer`` from every list it is registered on.

        Safe to call from inside the observer itself (each dispatch iterates
        a copy of the list); unknown observers are ignored, so unsubscribing
        twice is harmless.
        """
        for observers in (
            self._tick_observers,
            self._epoch_observers,
            self._checkpoint_observers,
        ):
            while observer in observers:
                observers.remove(observer)
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, ticks: int, *, snapshot_states: bool = False) -> RunResult:
        """Execute ``ticks`` ticks (observers fire) and return the result.

        If an observer calls :meth:`pause`, execution stops at that tick
        boundary and the result covers the ticks executed so far; call
        :meth:`resume` and :meth:`run` again to continue.
        """
        for _ in self.stream(ticks, snapshot_states=snapshot_states):
            pass
        return self.result()

    def stream(self, ticks: int, *, snapshot_states: bool = False) -> Iterator[TickEvent]:
        """Execute up to ``ticks`` ticks lazily, yielding one event per tick.

        The returned iterator drives the runtime: each ``next()`` runs one
        distributed tick, fires the registered observers, and yields its
        :class:`TickEvent`.  Abandoning the iterator is safe — the world is
        synced on the way out — and a :meth:`pause` (from an observer or
        between pulls) ends the stream at the next tick boundary after
        snapshotting.  Starting a new stream (or a blocking :meth:`run`)
        finalizes any previously active stream at its tick boundary, and a
        run consumed tick-by-tick is bit-identical to a blocking
        :meth:`run`.

        ``snapshot_states=True`` attaches a full per-tick copy of every
        agent's state to each event; on the process backend this forces a
        world-sized sync per tick, defeating the resident-shard IPC savings
        — use it for debugging and visualisation, not benchmarking.
        """
        self._check_open()
        if self._active_stream is not None:
            # Finalize an abandoned (or still-suspended) earlier stream at
            # its tick boundary: its cleanup syncs the world, frees the
            # stream slot and honours any pending pause() request.
            self._active_stream.close()
        if self._paused:
            raise SimulationSessionError(
                "session is paused; call resume() before running more ticks"
            )
        self._ensure_started()
        stream = self._stream_ticks(int(ticks), snapshot_states)
        self._streaming = True
        self._active_stream = stream
        return stream

    def _stream_ticks(self, ticks: int, snapshot_states: bool) -> Iterator[TickEvent]:
        runtime = self._runtime
        assert runtime is not None
        best_tick = runtime.world.tick
        stalled_recoveries = 0
        try:
            for _ in range(ticks):
                if self._pause_requested:
                    break
                self._epoch_events.clear()
                while True:
                    try:
                        stats = runtime.run_tick()
                        break
                    except NodeLossError as error:
                        # Mirror BraceRuntime.run's supervision policy:
                        # absorb a survivable node loss by recovering from
                        # the last checkpoint, but re-raise when nothing
                        # survived, no checkpoint exists, or losses outpace
                        # re-execution.
                        if error.action == "lost":
                            raise
                        if not (
                            runtime.config.checkpointing
                            and runtime.master.checkpoint_manager.has_checkpoint()
                        ):
                            raise
                        if runtime.world.tick > best_tick:
                            best_tick = runtime.world.tick
                            stalled_recoveries = 0
                        stalled_recoveries += 1
                        if stalled_recoveries > 3:
                            raise
                        runtime.recover()
                epoch = self._epoch_events[-1] if self._epoch_events else None
                states = None
                if snapshot_states:
                    states = self.states()
                persisted = False
                if self._recorder is not None:
                    if not snapshot_states:
                        # Recording needs the authoritative post-tick world;
                        # states() above already synced it otherwise.
                        runtime.metrics.add_sync_ipc(runtime.sync_world())
                    self._recorder.record(self.world)
                    persisted = True
                event = TickEvent(
                    tick=stats.tick,
                    stats=stats,
                    epoch=epoch,
                    states=states,
                    persisted=persisted,
                )
                for observer in list(self._tick_observers):
                    observer(event)
                if epoch is not None:
                    for observer in list(self._epoch_observers):
                        observer(epoch)
                    if epoch.checkpointed:
                        self._checkpoints_taken.append(epoch.epoch)
                        for observer in list(self._checkpoint_observers):
                            observer(epoch)
                yield event
        finally:
            # Runs on exhaustion, consumer break and pause alike; always at a
            # tick boundary, so pausing and syncing here is safe.
            self._streaming = False
            self._active_stream = None
            if self._pause_requested and not self._paused:
                self._do_pause()
            self._pause_requested = False
            runtime.metrics.add_sync_ipc(runtime.sync_world())

    def states(self) -> dict[Any, dict[str, Any]]:
        """Current state of every agent (resident shards synced first)."""
        if self._runtime is not None:
            self._runtime.metrics.add_sync_ipc(self._runtime.sync_world())
        return {agent.agent_id: agent.state_dict() for agent in self.world.agents()}

    def result(self) -> RunResult:
        """The unified result for everything this session has executed."""
        self._check_open()
        runtime = self._ensure_started()
        return RunResult(
            final_states=self.states(),
            metrics=runtime.metrics,
            ticks=len(runtime.metrics.ticks),
            provenance=self._provenance(runtime),
            checkpoints_taken=list(self._checkpoints_taken),
            fault_events=list(runtime.fault_events),
            history_path=(
                str(self._recorder.store.path) if self._recorder is not None else None
            ),
        )

    def _provenance(self, runtime: BraceRuntime) -> Provenance:
        model = tuple(sorted({type(agent).__name__ for agent in self.world.agents()}))
        # Resolve every automatic knob to the choice that actually ran, so
        # the recorded config reproduces the run without re-deriving the
        # defaults: the effective seed, the runtime's resolved residency, the
        # spatial backend the query phases executed and the plan backend the
        # BRASIL phases attempted.  All of these are state-neutral, so
        # pinning them is safe.
        config = dataclasses.replace(
            runtime.config,
            seed=runtime.seed,
            resident_shards=runtime.resident,
            # Never let the cluster auth secret leak into provenance (it is
            # persisted with history recordings and serialized in results);
            # record only *that* auth was configured.
            cluster_secret=(
                "<scrubbed>" if runtime.config.cluster_secret is not None else None
            ),
            spatial_backend=resolve_spatial_backend(
                runtime.config.spatial_backend,
                runtime.config.index,
                self.world.agent_count(),
            ),
            plan_backend=resolve_plan_backend(
                runtime.config.plan_backend,
                {type(agent) for agent in self.world.agents()},
            ),
            ipc_backend=runtime.ipc_backend,
        )
        # The cluster backend knows which node hosts which shard; record the
        # resolved topology (addresses, pids, placement) so a result can say
        # where its shards physically ran.  Duck-typed: every single-host
        # executor simply lacks the hook.
        topology = getattr(runtime.executor, "node_topology", None)
        return Provenance(
            source=self._source,
            model=model,
            backend=runtime.config.executor,
            seed=runtime.seed,
            config=config,
            script_hash=self._script_hash,
            script_label=self._script_label,
            nodes=topology() if topology is not None else None,
        )

    # ------------------------------------------------------------------
    # Pause / resume
    # ------------------------------------------------------------------
    def pause(self) -> "Simulation":
        """Suspend at the current (or next) tick boundary.

        Snapshots the world through the checkpoint machinery and releases
        the executor-hosted shards, so a paused session holds no state in
        pool processes.  From inside an observer (or between ``next()``
        calls on an active stream) the pause takes effect at the next tick
        boundary and ends the stream; otherwise it is immediate.
        """
        self._check_open()
        if self._paused:
            return self
        if self._runtime is None:
            raise SimulationSessionError(
                "nothing to pause: the session has not started running"
            )
        if self._streaming:
            self._pause_requested = True
        else:
            self._do_pause()
        return self

    def _do_pause(self) -> None:
        runtime = self._runtime
        assert runtime is not None
        runtime.suspend()
        size = sum(worker.checkpoint_size_bytes() for worker in runtime.workers)
        self._pause_points.take(runtime.world, runtime.master.epoch, size)
        self._paused = True
        self._pause_requested = False

    def resume(self) -> "Simulation":
        """Restore the pause snapshot; the next run/stream continues bit-identically."""
        self._check_open()
        if not self._paused:
            raise SimulationSessionError("resume() called but the session is not paused")
        runtime = self._runtime
        assert runtime is not None
        checkpoint = self._pause_points.latest()
        runtime.restore_world(checkpoint.world_snapshot)
        self._paused = False
        return self

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Sync state back, tear down resident shards and stop the executor.

        Idempotent; after closing, the session's :attr:`world` holds the
        final agent states and the session cannot run further ticks.
        """
        if self._closed:
            return
        self._closed = True
        if self._runtime is not None:
            self._runtime.close()
        if self._recorder is not None:
            self._recorder.close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else "paused"
            if self._paused
            else "running"
            if self._runtime is not None
            else "ready"
        )
        return (
            f"<Simulation source={self._source!r} agents={self.world.agent_count()} "
            f"tick={self.world.tick} state={state}>"
        )
