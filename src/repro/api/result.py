"""The unified result type every :class:`~repro.api.Simulation` run returns.

Before the session layer existed, each entry point had its own result —
``BraceRuntime.run`` returned :class:`~repro.brace.metrics.BraceRunMetrics`,
``run_script`` a ``ScriptRunResult`` and every harness figure a bespoke
``*Result`` dataclass.  :class:`RunResult` unifies them: final agent states,
the full run metrics, measured IPC bytes and a :class:`Provenance` record
that says exactly which model, configuration, seed and backend produced the
numbers — enough to reproduce the run bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.brace.config import BraceConfig
from repro.brace.metrics import BraceRunMetrics


def script_sha256(source: str) -> str:
    """Content hash identifying a BRASIL script's exact source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Provenance:
    """Where a :class:`RunResult` came from — enough to reproduce it.

    Two runs with equal provenance (and the same package version) produce
    bit-identical final states regardless of the executor backend; the
    backend is still recorded because wall-clock and IPC measurements are
    backend-dependent even when the states are not.
    """

    #: ``"agents"`` (a world of Python agent objects) or ``"script"``
    #: (compiled from BRASIL source).
    source: str
    #: Agent class name(s) simulated, alphabetically sorted.
    model: tuple[str, ...]
    #: Executor backend the worker phases ran on ("serial"/"thread"/"process").
    backend: str
    #: Seed all run randomness derived from.
    seed: int
    #: The exact runtime configuration the session compiled down to, with
    #: every automatic knob *resolved* to the choice that actually ran:
    #: ``seed`` is the effective seed, ``resident_shards`` the runtime's
    #: resolved residency and ``spatial_backend`` the backend the query
    #: phases executed ("python" or "vectorized", never None).  Re-running
    #: with this config reproduces the run bit for bit — backend resolution
    #: is state-neutral, so pinning it changes nothing but speed.
    config: BraceConfig
    #: SHA-256 of the BRASIL source for script runs, None for agent runs.
    script_hash: str | None = None
    #: Where the script came from (path, or ``"<script>"`` for inline source).
    script_label: str | None = None
    #: Resolved node topology for cluster-backend runs — one record per
    #: connected node (index, address, pid, whether it was auto-spawned,
    #: and the shards it hosted when the run finished); ``None`` for every
    #: single-host backend.  Topology affects wall-clock and wire bytes,
    #: never states, so it is recorded but not part of the reproduction key.
    nodes: tuple | None = None

    def describe(self) -> str:
        """One human-readable line identifying the run."""
        model = "+".join(self.model) if self.model else "<empty world>"
        origin = f"script {self.script_hash[:12]}" if self.script_hash else "python agents"
        return (
            f"{model} from {origin} on {self.backend} "
            f"({self.config.num_workers} workers, seed {self.seed})"
        )


@dataclass
class RunResult:
    """Everything a finished (or paused) :class:`Simulation` run produced."""

    #: State of every agent at the end of the run, keyed by agent id.
    final_states: dict[Any, dict[str, Any]]
    #: Accumulated per-tick/per-epoch statistics for the whole session.
    metrics: BraceRunMetrics
    #: Number of ticks this session executed in total.
    ticks: int
    #: Model, configuration, seed and backend that produced this result.
    provenance: Provenance
    #: Epoch numbers at which coordinated checkpoints were taken.
    checkpoints_taken: list[int] = field(default_factory=list)
    #: Supervision log for cluster runs: one record per node loss
    #: (``event="node_loss"`` with the dead node, the shards it hosted and
    #: the action taken — respawned/readmitted/rehomed/lost) and per
    #: checkpoint recovery (``event="recovered"`` with the restored tick and
    #: how many ticks were re-executed).  Empty for undisturbed runs.
    fault_events: list[dict] = field(default_factory=list)
    #: Directory of the recorded tick history (``with_history(path)``), or
    #: None when the session ran without recording.  Open it with
    #: :meth:`repro.history.History.open` to time-travel the finished run.
    history_path: str | None = None

    @property
    def num_agents(self) -> int:
        """Number of agents alive at the end of the run."""
        return len(self.final_states)

    @property
    def ipc_bytes(self) -> int:
        """Measured driver<->shard bytes for the whole run.

        Real pickled payload sizes from the resident-shard protocol; 0 for
        runs on memory-sharing backends (nothing crossed a process boundary).
        """
        return self.metrics.total_ipc_bytes()

    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second (the paper's scale-up unit)."""
        return self.metrics.throughput(skip_ticks)

    def wall_throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per wall-clock second."""
        return self.metrics.wall_throughput(skip_ticks)

    def bytes_over_network(self) -> int:
        """Modeled replication+effect+migration bytes that crossed nodes."""
        return self.metrics.total_bytes_over_network()

    def same_states_as(self, other: "RunResult") -> bool:
        """True when both runs ended with bit-identical agent states."""
        return self.final_states == other.final_states

    def summary(self) -> str:
        """A short multi-line report of the run."""
        lines = [
            self.provenance.describe(),
            f"  {self.ticks} ticks, {self.num_agents} agents, "
            f"{self.throughput():,.0f} agent ticks/s (virtual)",
            f"  {self.bytes_over_network():,} modeled bytes over the network, "
            f"{self.ipc_bytes:,} measured IPC bytes",
        ]
        if self.checkpoints_taken:
            lines.append(f"  checkpoints at epochs {self.checkpoints_taken}")
        if self.fault_events:
            losses = sum(1 for e in self.fault_events if e.get("event") == "node_loss")
            lines.append(
                f"  {losses} node loss(es) absorbed "
                f"({len(self.fault_events)} fault events)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<RunResult ticks={self.ticks} agents={self.num_agents} "
            f"backend={self.provenance.backend!r}>"
        )
