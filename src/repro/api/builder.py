"""The fluent, eagerly validated configuration builder behind ``with_*``.

:class:`ConfigBuilder` accumulates overrides on top of a base
:class:`~repro.brace.config.BraceConfig` and *compiles* them into a
validated config with :meth:`build`.  Every setter re-validates the whole
configuration immediately, so a bad knob fails at the call that introduced
it::

    Simulation.from_agents(world).with_executor("proces")
    # BraceError: unknown executor 'proces'; expected 'serial', 'thread' or 'process'

rather than as a deep ``KeyError`` ticks into a run.  The builder is shared
by both session sources: agent sessions build the config directly; script
sessions hand the built config to
:func:`repro.brasil.runner.config_for_script`, which layers the compiler's
own overrides (reduce-pass structure, access-path selection) on top.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.brace.config import BraceConfig
from repro.core.errors import BraceError

#: Field names a builder may override — exactly BraceConfig's surface.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(BraceConfig))


class ConfigBuilder:
    """Accumulates validated overrides that compile down to a BraceConfig."""

    def __init__(self, base: BraceConfig | None = None):
        self._base = base if base is not None else BraceConfig()
        self._overrides: dict[str, Any] = {}
        #: Spatial index explicitly chosen by the caller, or ``"auto"`` to let
        #: script sessions adopt the optimizer's access-path selection.
        self.index_choice: str | None = "auto"

    def set(self, **overrides: Any) -> "ConfigBuilder":
        """Record ``overrides`` and fail fast if they produce a bad config."""
        for name in overrides:
            if name not in _CONFIG_FIELDS:
                known = ", ".join(sorted(_CONFIG_FIELDS))
                raise BraceError(
                    f"unknown configuration option {name!r}; BraceConfig fields are: {known}"
                )
        candidate = dict(self._overrides)
        candidate.update(overrides)
        dataclasses.replace(self._base, **candidate).validate()
        self._overrides = candidate
        return self

    def build(self) -> BraceConfig:
        """Compile the accumulated overrides into a validated BraceConfig."""
        config = dataclasses.replace(self._base, **self._overrides)
        config.validate()
        return config

    def explicitly_set(self, name: str) -> bool:
        """True when the caller overrode ``name`` (vs inheriting the base)."""
        return name in self._overrides


class FluentConfig:
    """Mixin providing the ``with_*`` surface on :class:`~repro.api.Simulation`.

    Every method validates eagerly, mutates the session's builder and
    returns ``self``, so configuration chains fluently::

        sim = (Simulation.from_agents(world)
               .with_executor("process", max_workers=8)
               .with_partitioning("strip", num_workers=8)
               .with_index("kdtree")
               .with_checkpointing(every_epochs=2)
               .with_seed(7))

    Concrete classes must provide ``self._builder`` (a :class:`ConfigBuilder`)
    and ``self._check_not_started()`` (configuration is frozen once the
    runtime exists).
    """

    _builder: ConfigBuilder

    def _check_not_started(self) -> None:
        raise NotImplementedError

    def _attach_history(self, path: Any, **options: Any) -> Any:
        raise NotImplementedError

    def with_executor(
        self,
        executor: str,
        max_workers: int | None = None,
        resident_shards: bool | None = None,
    ) -> Any:
        """Choose the execution backend: "serial", "thread", "process" or "cluster".

        ``max_workers`` bounds the pool; ``resident_shards`` overrides the
        automatic choice of the per-tick delta protocol (on exactly for
        backends that do not share the driver's memory).  The "cluster"
        backend hosts shards on socket-connected node processes — tune the
        node topology with :meth:`with_nodes`.
        """
        self._check_not_started()
        overrides: dict[str, Any] = {"executor": executor}
        if max_workers is not None:
            overrides["max_workers"] = max_workers
        if resident_shards is not None:
            overrides["resident_shards"] = resident_shards
        self._builder.set(**overrides)
        return self

    def with_nodes(
        self,
        num_nodes: int,
        listen: str | None = None,
        spawn: bool | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        secret: str | None = None,
        readmission_timeout: float | None = None,
    ) -> Any:
        """Configure the cluster backend's node topology.

        ``num_nodes`` is how many worker node processes host the shards;
        ``listen`` the ``host:port`` the driver accepts them on (port 0
        picks a free port); ``spawn=False`` waits for externally started
        nodes (``python -m repro.cluster.node --connect host:port``) instead
        of spawning localhost subprocesses.  The heartbeat knobs tune
        failure detection: a node silent for ``heartbeat_timeout`` seconds
        is declared dead; supervision then respawns it (or waits
        ``readmission_timeout`` seconds for an external replacement to dial
        in, falling back to re-homing the lost shards onto the survivors)
        and the run recovers from the last checkpoint.  ``secret`` is the
        shared HMAC key nodes must prove knowledge of before joining —
        mandatory for non-localhost listeners, and scrubbed from provenance.
        Only meaningful together with ``with_executor("cluster")``.
        """
        self._check_not_started()
        overrides: dict[str, Any] = {"cluster_nodes": int(num_nodes)}
        if listen is not None:
            overrides["cluster_listen"] = listen
        if spawn is not None:
            overrides["cluster_spawn"] = bool(spawn)
        if heartbeat_interval is not None:
            overrides["heartbeat_interval_seconds"] = float(heartbeat_interval)
        if heartbeat_timeout is not None:
            overrides["heartbeat_timeout_seconds"] = float(heartbeat_timeout)
        if secret is not None:
            overrides["cluster_secret"] = secret
        if readmission_timeout is not None:
            overrides["readmission_timeout_seconds"] = float(readmission_timeout)
        self._builder.set(**overrides)
        return self

    def with_partitioning(
        self,
        scheme: str = "strip",
        num_workers: int | None = None,
        grid_cells: Sequence[int] | None = None,
    ) -> Any:
        """Choose how space is split across workers ("strip" or "grid")."""
        self._check_not_started()
        overrides: dict[str, Any] = {"partitioning": scheme, "grid_cells": grid_cells}
        if num_workers is not None:
            overrides["num_workers"] = num_workers
        self._builder.set(**overrides)
        return self

    def with_workers(self, num_workers: int) -> Any:
        """Set the number of simulated workers (partitions)."""
        self._check_not_started()
        self._builder.set(num_workers=num_workers)
        return self

    def with_index(
        self,
        index: str | None,
        cell_size: float | None = None,
        check_visibility: bool | None = None,
    ) -> Any:
        """Force the query phase's spatial access path.

        ``index`` is "kdtree", "grid", "quadtree" or None (nested-loop scan).
        Script sessions default to the optimizer's selection; calling this
        overrides it.  ``cell_size`` applies to the grid index only.
        """
        self._check_not_started()
        if index not in (None, "kdtree", "grid", "quadtree"):
            raise BraceError(
                f"unknown spatial index {index!r}; expected 'kdtree', "
                "'grid', 'quadtree' or None for a nested-loop scan"
            )
        overrides: dict[str, Any] = {"index": index}
        if cell_size is not None:
            # Recorded as an explicit choice: script sessions keep it over
            # the optimizer's cell-size selection.
            overrides["cell_size"] = cell_size
        if check_visibility is not None:
            overrides["check_visibility"] = check_visibility
        self._builder.set(**overrides)
        self._builder.index_choice = index
        return self

    def with_spatial_backend(self, backend: str | None) -> Any:
        """Choose how the query phase's spatial joins execute.

        ``"vectorized"`` runs the columnar NumPy batch kernels (one position
        snapshot per worker per tick, all probes answered in a handful of
        array ops), ``"python"`` the interpreted per-probe index queries,
        ``None`` restores automatic selection.  Agent states are
        bit-identical whichever backend runs — this knob only trades speed.
        """
        self._check_not_started()
        # Validation happens in ConfigBuilder.set() -> BraceConfig.validate(),
        # the single source of truth for legal backend names.
        self._builder.set(spatial_backend=backend)
        return self

    def with_plan_backend(self, backend: str | None) -> Any:
        """Choose how BRASIL query/update plans execute.

        ``"compiled"`` runs whole-phase columnar kernels (effect aggregation
        as scatter-reductions over the spatial join's match lists, update
        rules as column math over a structure-of-arrays snapshot),
        ``"interpreted"`` the reference per-agent AST walk, ``None`` restores
        automatic selection.  Plans outside the provable subset fall back to
        the interpreter per worker-phase, so agent states are bit-identical
        whichever backend runs — this knob only trades speed.
        """
        self._check_not_started()
        # Validation happens in ConfigBuilder.set() -> BraceConfig.validate(),
        # the single source of truth for legal backend names.
        self._builder.set(plan_backend=backend)
        return self

    def with_ipc_backend(self, backend: str | None) -> Any:
        """Choose how resident-shard deltas cross the driver/shard boundary.

        ``"columnar"`` packs each round's agents and effect partials into
        structure-of-arrays delta frames and moves them through pooled
        shared-memory segments with comm/compute overlap, ``"pickle"`` keeps
        the legacy per-object protocol, ``None`` restores automatic
        selection (columnar exactly when deltas really cross a process
        boundary).  Decoded payloads are bit-identical whichever backend
        runs — this knob only trades speed.
        """
        self._check_not_started()
        # Validation happens in ConfigBuilder.set() -> BraceConfig.validate(),
        # the single source of truth for legal backend names.
        self._builder.set(ipc_backend=backend)
        return self

    def with_load_balancing(
        self,
        enabled: bool = True,
        threshold: float | None = None,
        axis: int | None = None,
    ) -> Any:
        """Enable/disable epoch-boundary load balancing and tune its trigger."""
        self._check_not_started()
        overrides: dict[str, Any] = {"load_balance": bool(enabled)}
        if threshold is not None:
            overrides["load_balance_threshold"] = threshold
        if axis is not None:
            overrides["load_balance_axis"] = axis
        self._builder.set(**overrides)
        return self

    def with_epochs(self, ticks_per_epoch: int) -> Any:
        """Set how many ticks pass between master interactions (an epoch)."""
        self._check_not_started()
        self._builder.set(ticks_per_epoch=ticks_per_epoch)
        return self

    def with_checkpointing(self, every_epochs: int = 1, enabled: bool = True) -> Any:
        """Take a coordinated checkpoint every ``every_epochs`` epochs.

        ``enabled=False`` turns checkpointing off (``pause()`` keeps working —
        it snapshots on demand rather than on the epoch schedule).
        """
        self._check_not_started()
        self._builder.set(
            checkpointing=bool(enabled), checkpoint_interval_epochs=every_epochs
        )
        return self

    def with_seed(self, seed: int) -> Any:
        """Seed the run's randomness (defaults to the world's seed)."""
        self._check_not_started()
        self._builder.set(seed=int(seed))
        return self

    def with_non_local_effects(self, enabled: bool = True) -> Any:
        """Run the second reduce pass for models assigning non-local effects.

        Script sessions configure this automatically from the effect-inversion
        outcome; agent sessions whose ``query`` writes effects on *other*
        agents must enable it explicitly.
        """
        self._check_not_started()
        self._builder.set(non_local_effects=bool(enabled))
        return self

    def with_history(
        self,
        path: Any,
        *,
        checkpoint_every: int = 16,
        max_ticks: int | None = None,
        thin_to_checkpoints: bool = False,
        overwrite: bool = False,
    ) -> Any:
        """Persist every executed tick into a queryable history store.

        ``path`` names a directory; recording begins when the session starts
        and every tick is appended live, so ``session.history`` (or
        :meth:`repro.history.History.open` on the path, even from another
        process) can time-travel to any recorded tick with
        ``state_at(t)`` — bit-identical to a fresh run truncated at ``t``.

        ``checkpoint_every`` sets the full-checkpoint cadence (replay rolls
        at most that many deltas); ``max_ticks`` keeps only the most recent
        window of ticks and ``thin_to_checkpoints=True`` retains only
        checkpoint ticks for the older range — both thin without ever
        breaking a retained tick's replay chain.  Recording forces a world
        sync per tick on the process backend (like ``snapshot_states=True``),
        trading resident-shard IPC savings for the persisted trajectory.
        """
        self._check_not_started()
        return self._attach_history(
            path,
            checkpoint_every=checkpoint_every,
            max_ticks=max_ticks,
            thin_to_checkpoints=thin_to_checkpoints,
            overwrite=overwrite,
        )

    def with_options(self, **overrides: Any) -> Any:
        """Escape hatch: override any :class:`BraceConfig` field by name.

        Unknown names and invalid values fail immediately with the list of
        valid fields / the violated constraint.
        """
        self._check_not_started()
        self._builder.set(**overrides)
        return self
