"""Builtin functions callable from BRASIL expressions.

Every builtin is a pure scalar function.  ``rand()`` is not listed here
because it needs the per-agent deterministic random stream; the interpreter
handles it specially.
"""

from __future__ import annotations

import math
from typing import Callable


def _sign(value: float) -> float:
    if value > 0:
        return 1.0
    if value < 0:
        return -1.0
    return 0.0


BUILTIN_FUNCTIONS: dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "exp": math.exp,
    "log": math.log,
    "pow": math.pow,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan2": math.atan2,
    "hypot": math.hypot,
    "sign": _sign,
}
