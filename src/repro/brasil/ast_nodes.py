"""Abstract syntax tree node classes for BRASIL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    """Base class for expressions."""


@dataclass
class NumberLit(Expr):
    """A numeric literal (int or float)."""

    value: float


@dataclass
class BoolLit(Expr):
    """``true`` or ``false``."""

    value: bool


@dataclass
class Name(Expr):
    """A bare identifier: a local variable, a field of the active agent, or ``this``."""

    identifier: str


@dataclass
class FieldAccess(Expr):
    """``target.field`` — reading a field of another agent."""

    target: Expr
    field_name: str


@dataclass
class BinaryOp(Expr):
    """A binary operation (arithmetic, comparison or logical)."""

    operator: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """A unary operation: ``-expr`` or ``!expr``."""

    operator: str
    operand: Expr


@dataclass
class Call(Expr):
    """A builtin function call such as ``abs(x)`` or ``rand()``."""

    function: str
    arguments: list[Expr] = field(default_factory=list)


@dataclass
class Conditional(Expr):
    """The ternary conditional ``condition ? then : otherwise``."""

    condition: Expr
    then_expr: Expr
    else_expr: Expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    """Base class for statements."""


@dataclass
class Block(Stmt):
    """A ``{ ... }`` sequence of statements."""

    statements: list[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    """A local (const) variable declaration: ``const float d = ...;``."""

    type_name: str
    name: str
    initializer: Expr
    is_const: bool = True


@dataclass
class Assign(Stmt):
    """Assignment to a local variable (``name = expr;``)."""

    name: str
    value: Expr


@dataclass
class EffectAssign(Stmt):
    """An effect assignment ``target <- expr;`` aggregated by the field's combinator.

    ``target_agent`` is None for local assignments (``avoidx <- ...``) and an
    expression for non-local ones (``p.avoidx <- ...``).
    """

    target_agent: Expr | None
    field_name: str
    value: Expr


@dataclass
class ForEach(Stmt):
    """``foreach (Type var : Extent<Type>) { body }``."""

    element_type: str
    variable: str
    body: Block


@dataclass
class If(Stmt):
    """``if (condition) { then } else { otherwise }``."""

    condition: Expr
    then_block: Block
    else_block: Block | None = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its value only (rare; kept for completeness)."""

    expression: Expr


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class RangeConstraint:
    """A ``#range[lo, hi]`` (or ``#visibility`` / ``#reachability``) annotation."""

    kind: str  # "range", "visibility" or "reachability"
    low: float
    high: float

    @property
    def radius(self) -> float:
        """The symmetric radius implied by the interval."""
        return max(abs(self.low), abs(self.high))


@dataclass
class FieldDecl:
    """One ``state`` or ``effect`` field declaration."""

    access: str  # "public" or "private"
    kind: str  # "state" or "effect"
    type_name: str  # "float", "int" or "bool"
    name: str
    # For state fields: the update rule expression (may be None for constants).
    update_rule: Expr | None = None
    # For effect fields: the combinator name ("sum", "min", ...).
    combinator: str | None = None
    constraints: list[RangeConstraint] = field(default_factory=list)

    @property
    def is_state(self) -> bool:
        """True for ``state`` fields."""
        return self.kind == "state"

    @property
    def is_effect(self) -> bool:
        """True for ``effect`` fields."""
        return self.kind == "effect"

    @property
    def is_spatial(self) -> bool:
        """True when the field carries a range/visibility constraint."""
        return bool(self.constraints)

    def visibility_radius(self) -> float | None:
        """The visibility radius implied by the constraints, if any."""
        radii = [c.radius for c in self.constraints if c.kind in ("range", "visibility")]
        return max(radii) if radii else None

    def reachability_radius(self) -> float | None:
        """The reachability radius implied by the constraints, if any."""
        radii = [c.radius for c in self.constraints if c.kind in ("range", "reachability")]
        return max(radii) if radii else None


@dataclass
class MethodDecl:
    """A method declaration; only ``run()`` (the query phase) is significant."""

    access: str
    return_type: str
    name: str
    parameters: list[tuple[str, str]] = field(default_factory=list)
    body: Block = field(default_factory=Block)


@dataclass
class ClassDecl:
    """A BRASIL agent class."""

    name: str
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)

    def state_fields(self) -> list[FieldDecl]:
        """The declared state fields, in order."""
        return [f for f in self.fields if f.is_state]

    def effect_fields(self) -> list[FieldDecl]:
        """The declared effect fields, in order."""
        return [f for f in self.fields if f.is_effect]

    def field_named(self, name: str) -> FieldDecl | None:
        """Look a field up by name."""
        for declared in self.fields:
            if declared.name == name:
                return declared
        return None

    def run_method(self) -> MethodDecl | None:
        """The ``run()`` method (the query phase), if declared."""
        for method in self.methods:
            if method.name == "run":
                return method
        return None


@dataclass
class Script:
    """A parsed BRASIL compilation unit (one or more classes)."""

    classes: list[ClassDecl] = field(default_factory=list)

    def class_named(self, name: str) -> ClassDecl | None:
        """Look a class up by name."""
        for declared in self.classes:
            if declared.name == name:
                return declared
        return None


def walk_statements(node: Any):
    """Yield every statement nested under ``node`` (including itself)."""
    if isinstance(node, Block):
        for statement in node.statements:
            yield from walk_statements(statement)
    elif isinstance(node, ForEach):
        yield node
        yield from walk_statements(node.body)
    elif isinstance(node, If):
        yield node
        yield from walk_statements(node.then_block)
        if node.else_block is not None:
            yield from walk_statements(node.else_block)
    elif isinstance(node, Stmt):
        yield node


def walk_expressions(node: Any):
    """Yield every expression nested under a statement or expression."""
    if isinstance(node, Expr):
        yield node
        if isinstance(node, BinaryOp):
            yield from walk_expressions(node.left)
            yield from walk_expressions(node.right)
        elif isinstance(node, UnaryOp):
            yield from walk_expressions(node.operand)
        elif isinstance(node, Call):
            for argument in node.arguments:
                yield from walk_expressions(argument)
        elif isinstance(node, FieldAccess):
            yield from walk_expressions(node.target)
        elif isinstance(node, Conditional):
            yield from walk_expressions(node.condition)
            yield from walk_expressions(node.then_expr)
            yield from walk_expressions(node.else_expr)
    elif isinstance(node, Block):
        for statement in node.statements:
            yield from walk_expressions(statement)
    elif isinstance(node, LocalDecl):
        yield from walk_expressions(node.initializer)
    elif isinstance(node, Assign):
        yield from walk_expressions(node.value)
    elif isinstance(node, EffectAssign):
        if node.target_agent is not None:
            yield from walk_expressions(node.target_agent)
        yield from walk_expressions(node.value)
    elif isinstance(node, ForEach):
        yield from walk_expressions(node.body)
    elif isinstance(node, If):
        yield from walk_expressions(node.condition)
        yield from walk_expressions(node.then_block)
        if node.else_block is not None:
            yield from walk_expressions(node.else_block)
    elif isinstance(node, ExprStmt):
        yield from walk_expressions(node.expression)
