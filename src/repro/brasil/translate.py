"""Translation of BRASIL query scripts into monad algebra plans.

This is the executable counterpart of Appendix B: the query phase of a
BRASIL class becomes an algebra plan that maps an *environment tuple*

.. code-block:: python

    {"this": {field: value, ..., "__id__": agent_id},
     "extent": [{field: value, ..., "__id__": agent_id}, ...]}

to the collection of effect tuples ``{"key", "field", "value"}`` the agent
generates — the set of effects ``{ρ}`` of the formal semantics.  Visibility
constraints become explicit selections (``σ_V``), which is how Theorem 1
identifies the BRASIL weak-reference semantics with the BRACE implementation.

The translator supports the declarative core of BRASIL: constant locals,
``foreach`` over an extent, ``if`` guards and effect assignments.  Scripts
using ``rand()`` in the query phase or reassigning locals cannot be expressed
as a pure plan and raise :class:`TranslationNotSupported`; the compiler then
keeps only the interpreted execution path for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.brasil.algebra import (
    AlgebraOp,
    Apply,
    Arith,
    Compose,
    Cond,
    Const,
    FlatMap,
    Identity,
    MapOp,
    Negate,
    NotNil,
    PairWith,
    Project,
    Select,
    Sng,
    TupleCons,
    UnionOp,
)
from repro.brasil.ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    BoolLit,
    Call,
    ClassDecl,
    Conditional,
    EffectAssign,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    Name,
    NumberLit,
    UnaryOp,
)
from repro.brasil.semantics import ScriptInfo, analyze_class
from repro.core.errors import BrasilError


class TranslationNotSupported(BrasilError):
    """The script uses a construct outside the algebra-translatable subset."""


@dataclass
class _Scope:
    """Static context while translating: known fields, bindings and locals."""

    field_names: set[str]
    loop_variables: list[str]
    locals_map: dict[str, AlgebraOp]


def translate_expression(expression: Expr, scope: _Scope) -> AlgebraOp:
    """Translate one BRASIL expression into an algebra plan over the environment tuple."""
    if isinstance(expression, NumberLit):
        return Const(expression.value)
    if isinstance(expression, BoolLit):
        return Const(expression.value)
    if isinstance(expression, Name):
        identifier = expression.identifier
        if identifier == "this":
            return Project("this")
        if identifier in scope.loop_variables:
            return Project(identifier)
        if identifier in scope.locals_map:
            return scope.locals_map[identifier]
        if identifier in scope.field_names:
            return Compose(Project("this"), Project(identifier))
        raise TranslationNotSupported(f"unknown name {identifier!r} in algebra translation")
    if isinstance(expression, FieldAccess):
        return Compose(translate_expression(expression.target, scope), Project(expression.field_name))
    if isinstance(expression, BinaryOp):
        return Arith(
            expression.operator,
            translate_expression(expression.left, scope),
            translate_expression(expression.right, scope),
        )
    if isinstance(expression, UnaryOp):
        return Negate(expression.operator, translate_expression(expression.operand, scope))
    if isinstance(expression, Call):
        if expression.function == "rand":
            raise TranslationNotSupported("rand() cannot appear in a pure algebra plan")
        return Apply(
            expression.function,
            [translate_expression(argument, scope) for argument in expression.arguments],
        )
    if isinstance(expression, Conditional):
        return Cond(
            translate_expression(expression.condition, scope),
            translate_expression(expression.then_expr, scope),
            translate_expression(expression.else_expr, scope),
        )
    raise TranslationNotSupported(f"cannot translate expression {type(expression).__name__}")


def _bind_loop_variable(variable: str, known_labels: list[str]) -> AlgebraOp:
    """An operator binding ``variable`` to each element of the extent.

    Input: one environment tuple; output: a collection of environment tuples
    extended with ``variable``.  Built from tuple construction + PAIRWITH as
    in the derived cartesian product of Appendix B.
    """
    fields: dict[str, AlgebraOp] = {label: Project(label) for label in known_labels}
    fields[variable] = Project("extent")
    return Compose(TupleCons(fields), PairWith(variable))


def _visibility_predicate(
    variable: str, info: ScriptInfo, scope: _Scope
) -> AlgebraOp | None:
    """σ_V: the loop agent lies within the active agent's visible region."""
    if not info.has_bounded_visibility:
        return None
    conditions: list[AlgebraOp] = []
    for field_name in info.spatial_field_names:
        radius = info.visibility_radii[field_name]
        difference = Apply(
            "abs",
            [
                Arith(
                    "-",
                    Compose(Project("this"), Project(field_name)),
                    Compose(Project(variable), Project(field_name)),
                )
            ],
        )
        conditions.append(Arith("<=", difference, Const(radius)))
    predicate = conditions[0]
    for condition in conditions[1:]:
        predicate = Arith("&&", predicate, condition)
    return predicate


def _exclude_self_predicate(variable: str) -> AlgebraOp:
    """The loop agent is not the active agent (extents exclude ``this``)."""
    return Arith(
        "!=",
        Compose(Project(variable), Project("__id__")),
        Compose(Project("this"), Project("__id__")),
    )


class QueryTranslator:
    """Translates a class's ``run()`` method into an effect-producing plan."""

    def __init__(self, declaration: ClassDecl, info: ScriptInfo | None = None):
        self.declaration = declaration
        self.info = info or analyze_class(declaration)
        self._pipelines: list[AlgebraOp] = []

    def translate(self) -> AlgebraOp:
        """Return the plan mapping an environment tuple to a collection of effects."""
        run_method = self.declaration.run_method()
        if run_method is None:
            return Compose(Identity(), Const([]))
        scope = _Scope(
            field_names={field.name for field in self.declaration.fields},
            loop_variables=[],
            locals_map={},
        )
        self._pipelines = []
        self._translate_block(run_method.body, scope, guards=[], binders=[])
        if not self._pipelines:
            return Compose(Identity(), Const([]))
        return UnionOp(self._pipelines)

    # ------------------------------------------------------------------
    # Statement translation
    # ------------------------------------------------------------------
    def _translate_block(
        self,
        block: Block,
        scope: _Scope,
        guards: list[AlgebraOp],
        binders: list[AlgebraOp],
    ) -> None:
        scope = _Scope(
            field_names=scope.field_names,
            loop_variables=list(scope.loop_variables),
            locals_map=dict(scope.locals_map),
        )
        for statement in block.statements:
            if isinstance(statement, LocalDecl):
                scope.locals_map[statement.name] = translate_expression(
                    statement.initializer, scope
                )
            elif isinstance(statement, Assign):
                raise TranslationNotSupported(
                    "local reassignment cannot be expressed as a pure plan"
                )
            elif isinstance(statement, EffectAssign):
                self._pipelines.append(
                    self._effect_pipeline(statement, scope, guards, binders)
                )
            elif isinstance(statement, ForEach):
                known_labels = ["this", "extent", *scope.loop_variables]
                binder = _bind_loop_variable(statement.variable, known_labels)
                inner_scope = _Scope(
                    field_names=scope.field_names,
                    loop_variables=scope.loop_variables + [statement.variable],
                    locals_map=dict(scope.locals_map),
                )
                inner_guards = list(guards)
                inner_guards.append(_exclude_self_predicate(statement.variable))
                visibility = _visibility_predicate(statement.variable, self.info, inner_scope)
                if visibility is not None:
                    inner_guards.append(visibility)
                self._translate_block(
                    statement.body, inner_scope, inner_guards, binders + [binder]
                )
            elif isinstance(statement, If):
                condition = translate_expression(statement.condition, scope)
                self._translate_block(statement.then_block, scope, guards + [condition], binders)
                if statement.else_block is not None:
                    negated = Negate("!", condition)
                    self._translate_block(statement.else_block, scope, guards + [negated], binders)
            elif isinstance(statement, (Block,)):
                self._translate_block(statement, scope, guards, binders)
            elif isinstance(statement, ExprStmt):
                continue
            else:
                raise TranslationNotSupported(
                    f"cannot translate statement {type(statement).__name__}"
                )

    def _effect_pipeline(
        self,
        assignment: EffectAssign,
        scope: _Scope,
        guards: list[AlgebraOp],
        binders: list[AlgebraOp],
    ) -> AlgebraOp:
        """The plan fragment producing the effect tuples of one ``<-`` statement."""
        if assignment.target_agent is None or (
            isinstance(assignment.target_agent, Name)
            and assignment.target_agent.identifier == "this"
        ):
            key_plan: AlgebraOp = Compose(Project("this"), Project("__id__"))
        else:
            key_plan = Compose(
                translate_expression(assignment.target_agent, scope), Project("__id__")
            )
        value_plan = translate_expression(assignment.value, scope)

        effect_tuple = TupleCons(
            {"key": key_plan, "field": Const(assignment.field_name), "value": value_plan}
        )

        plan: AlgebraOp = Sng()
        for binder in binders:
            plan = Compose(plan, FlatMap(binder))
        for guard in guards:
            plan = Compose(plan, Select(guard))
        plan = Compose(plan, Select(NotNil(value_plan)))
        plan = Compose(plan, MapOp(effect_tuple))
        return plan


def translate_query(declaration: ClassDecl, info: ScriptInfo | None = None) -> AlgebraOp:
    """Translate ``declaration``'s query phase into a monad algebra plan."""
    return QueryTranslator(declaration, info).translate()


def translate_plan_kernels(
    declaration: ClassDecl,
    info: ScriptInfo | None = None,
    restrict_to_visible: bool = True,
) -> tuple[Any, Any]:
    """Translate both phases into whole-phase columnar kernels, where provable.

    This is the batched counterpart of :func:`translate_query`: instead of an
    algebra plan evaluated tuple-at-a-time, the query phase becomes one
    :class:`~repro.brasil.kernels.QueryKernel` (effect aggregation as
    ``np.ufunc.at`` scatter-reductions over the spatial join's match lists)
    and the update rules become one
    :class:`~repro.brasil.kernels.UpdateKernel` (column math over a
    structure-of-arrays snapshot).  Either slot is ``None`` when that phase
    uses a construct whose kernel cannot be *proven* bit-identical to the
    interpreter — ``rand()``, nested ``foreach``, loop-carried locals,
    ``collect`` effects — in which case the runtime keeps the interpreted
    path for it.
    """
    from repro.brasil.kernels import build_query_kernel, build_update_kernel

    if info is None:
        info = analyze_class(declaration)
    return (
        build_query_kernel(declaration, info, restrict_to_visible=restrict_to_visible),
        build_update_kernel(declaration, info),
    )


# ----------------------------------------------------------------------
# Executor-ready plan evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanQueryTask:
    """A picklable query task: evaluate an algebra plan over environment tuples.

    Follows the same no-closure discipline as the Appendix A jobs in
    :mod:`repro.mapreduce.simulation_job`: the plan is a tree of module-level
    dataclasses (pure data), so the task pickles cleanly and runs identically
    on the serial, thread and process executor backends.  Calling the task
    with a batch of environment tuples returns the flat list of effect tuples
    the batch generates.

    The BRACE runtime executes compiled scripts through the interpreter (the
    path that covers the whole language); this task is the algebra-path
    counterpart, used to cross-check the optimized plan against the
    interpreter on every backend (``tests/brasil/test_run_script.py``).
    """

    plan: AlgebraOp

    def __call__(self, environments: list[dict[str, Any]]) -> list[dict[str, Any]]:
        effects: list[dict[str, Any]] = []
        for environment in environments:
            effects.extend(self.plan.evaluate(environment))
        return effects


# ----------------------------------------------------------------------
# Helpers used by tests to run plans against real agents
# ----------------------------------------------------------------------
def agent_tuple(agent: Any) -> dict[str, Any]:
    """Encode an agent's state as the tuple the plans operate on."""
    values = dict(agent.state_dict())
    values["__id__"] = agent.agent_id
    return values


def environment_for(agent: Any, extent: list[Any]) -> dict[str, Any]:
    """Build the environment tuple for ``agent`` given the full extent."""
    return {
        "this": agent_tuple(agent),
        "extent": [agent_tuple(other) for other in extent if other is not agent],
    }


def aggregate_effects(
    effect_tuples: list[dict[str, Any]], combinators: dict[str, Any]
) -> dict[tuple[Any, str], Any]:
    """Fold raw effect tuples with each field's combinator (the ⊕ stage).

    ``combinators`` maps effect field names to
    :class:`~repro.core.combinators.Combinator` instances.  Returns the
    finalized aggregate per ``(agent id, field)``.
    """
    accumulators: dict[tuple[Any, str], Any] = {}
    for effect in effect_tuples:
        key = (effect["key"], effect["field"])
        combinator = combinators[effect["field"]]
        if key not in accumulators:
            accumulators[key] = combinator.identity()
        accumulators[key] = combinator.combine(accumulators[key], effect["value"])
    return {
        key: combinators[key[1]].finalize(accumulator)
        for key, accumulator in accumulators.items()
    }
