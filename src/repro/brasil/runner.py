"""Run BRASIL scripts end to end on the parallel BRACE runtime.

This is the compilation *backend* the paper promises its users: write a
simulation in BRASIL once, and the system owns parallelization.
:func:`run_script` drives the full path —

1. compile the script (semantic checks, effect inversion, algebra
   translation, access-path selection);
2. build a :class:`~repro.core.world.World` populated with deterministic
   initial agent states;
3. derive the :class:`~repro.brace.config.BraceConfig` the script needs
   (reduce-pass structure from the inversion outcome, spatial index from the
   optimizer's :class:`~repro.brasil.optimizer.IndexSelection`);
4. execute on :class:`~repro.brace.runtime.BraceRuntime` with whichever
   executor backend the caller configured (serial, thread or process —
   compiled agents are picklable, see :mod:`repro.brasil.compiler`).  On the
   process backend the runtime defaults to **resident worker shards**
   (``BraceConfig.resident_shards``): compiled agents live inside the pool
   processes across ticks and only boundary deltas are shipped, so a
   script's per-tick IPC scales with its visibility boundary rather than
   its population (``ScriptRunResult.ipc_bytes()`` reports the measurement).

Because every step is deterministic, the same script with the same seed
produces bit-identical agent states on every executor backend; the
equivalence tests in ``tests/brasil/test_run_script.py`` assert exactly
that for the traffic and fish-school scripts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.brace.config import BraceConfig
from repro.brace.metrics import BraceRunMetrics
from repro.brasil.compiler import CompiledScript, compile_script
from repro.core.errors import BrasilError
from repro.core.world import World
from repro.spatial.bbox import BBox

#: Half-width of the default world, as a multiple of the visibility radius.
_DEFAULT_BOUNDS_MULTIPLE = 10.0
#: Fallback half-width per spatial dimension when visibility is unbounded.
_DEFAULT_HALF_WIDTH = 100.0


def load_script_source(script: str | Path) -> tuple[str, str]:
    """Resolve ``script`` into ``(source text, label)``.

    ``script`` may be a filesystem path (``str`` or :class:`~pathlib.Path`)
    or raw BRASIL source.  Anything containing a newline or a brace is
    treated as source; everything else must name an existing file.
    """
    if not isinstance(script, Path) and ("\n" in script or "{" in script):
        return script, "<script>"
    path = Path(script)
    if not path.exists():
        raise BrasilError(
            f"BRASIL script path {str(path)!r} does not exist "
            "(pass a path to a script file, or the source text itself)"
        )
    return path.read_text(), str(path)


def _compile_with_label(
    source: str,
    label: str,
    class_name: str | None,
    effect_inversion: str,
    use_index: bool,
) -> CompiledScript:
    """Compile, prefixing any compiler error with the script's label.

    Keeps the original exception class (e.g.
    :class:`~repro.brasil.effect_inversion.EffectInversionError`) so callers
    can still catch specific failures, while the message says *which* script
    failed and why.
    """
    try:
        return compile_script(
            source,
            class_name=class_name,
            effect_inversion=effect_inversion,
            use_index=use_index,
        )
    except BrasilError as error:
        raise type(error)(f"cannot compile BRASIL script {label}: {error}") from error


def script_world_bounds(
    compiled: CompiledScript,
    bounds: BBox | Sequence[Sequence[float]] | None = None,
) -> BBox:
    """The world box a compiled script runs in.

    An explicit ``bounds`` (a :class:`BBox` or a sequence of ``(lo, hi)``
    intervals, one per spatial dimension) wins; otherwise each dimension
    spans ±10 visibility radii (±100 units when visibility is unbounded).
    """
    info = compiled.info
    if not info.spatial_field_names:
        raise BrasilError(
            f"class {compiled.class_name!r} declares no spatial fields; "
            "BRACE needs at least one #range/#visibility-annotated state field"
        )
    if bounds is not None:
        if isinstance(bounds, BBox):
            box = bounds
        else:
            box = BBox(tuple(tuple(float(edge) for edge in interval) for interval in bounds))
        if box.dim != len(info.spatial_field_names):
            raise BrasilError(
                f"bounds have {box.dim} dimension(s) but class "
                f"{compiled.class_name!r} declares {len(info.spatial_field_names)} "
                "spatial field(s)"
            )
        return box
    intervals = []
    for field_name in info.spatial_field_names:
        radius = info.visibility_radii.get(field_name)
        half = _DEFAULT_BOUNDS_MULTIPLE * radius if radius else _DEFAULT_HALF_WIDTH
        intervals.append((-half, half))
    return BBox(tuple(intervals))


def build_script_world(
    compiled: CompiledScript,
    num_agents: int = 50,
    initial_states: Sequence[dict[str, Any]] | None = None,
    bounds: BBox | Sequence[Sequence[float]] | None = None,
    seed: int = 0,
) -> World:
    """Build a world populated with agents of the compiled class.

    ``initial_states`` (one dict of state-field values per agent) takes
    precedence; otherwise ``num_agents`` agents are placed uniformly at
    random inside the bounds, spatial dimension by spatial dimension, from a
    generator seeded with ``seed`` — so the same call always builds the
    same world, which is what makes cross-backend runs comparable.
    """
    box = script_world_bounds(compiled, bounds)
    world = World(bounds=box, seed=seed)
    if initial_states is not None:
        for state in initial_states:
            world.add_agent(compiled.make_agent(**state))
        return world
    rng = np.random.default_rng([int(seed) & 0x7FFFFFFF, int(num_agents)])
    spatial_names = compiled.info.spatial_field_names
    for _ in range(int(num_agents)):
        values = {
            name: float(rng.uniform(lo, hi))
            for name, (lo, hi) in zip(spatial_names, box.intervals)
        }
        world.add_agent(compiled.make_agent(**values))
    return world


def config_for_script(
    compiled: CompiledScript,
    config: BraceConfig | None = None,
    index: str | None = "auto",
) -> BraceConfig:
    """Derive the runtime configuration a compiled script needs.

    Starts from ``config`` (or defaults), then applies the compiler's
    overrides: ``non_local_effects`` reflects the effect-inversion outcome
    (one reduce pass when inversion localized every assignment, two
    otherwise) and ``index``/``cell_size`` carry the optimizer's
    access-path selection.  ``index`` other than ``"auto"`` (including
    ``None`` for a nested-loop scan) overrides the selection.
    """
    base = config if config is not None else BraceConfig()
    overrides = compiled.brace_config_overrides()
    if base.spatial_backend is not None:
        # An explicitly configured backend beats the optimizer's pin — a
        # caller forcing the interpreted path (e.g. to measure the columnar
        # speedup) must actually get it.
        overrides.pop("spatial_backend", None)
    if index != "auto":
        overrides["index"] = index
        overrides["cell_size"] = _grid_cell_size(compiled) if index == "grid" else None
        # A forced access path drops the optimizer's backend pin too: the
        # runtime's per-extent auto selection respects index=None (the
        # un-indexed baseline stays interpreted and quadratic).
        overrides.pop("spatial_backend", None)
    derived = dataclasses.replace(base, **overrides)
    derived.validate()
    return derived


def _grid_cell_size(compiled: CompiledScript) -> float | None:
    """Cell size for a *forced* grid index: the optimizer's choice if it made
    one, else the visibility diameter (UniformGrid's built-in 1.0 default is
    almost always wrong for real workloads)."""
    selection = compiled.index_selection
    if selection is not None and selection.cell_size is not None:
        return selection.cell_size
    info = compiled.info
    radii = [
        info.visibility_radii[name]
        for name in info.spatial_field_names
        if name in info.visibility_radii
    ]
    return 2.0 * max(radii) if radii else None


@dataclass
class ScriptRunResult:
    """Everything :func:`run_script` produced."""

    compiled: CompiledScript
    world: World
    config: BraceConfig
    metrics: BraceRunMetrics
    ticks: int

    def final_states(self) -> dict[Any, dict[str, Any]]:
        """State of every agent after the run, keyed by agent id."""
        return {agent.agent_id: agent.state_dict() for agent in self.world.agents()}

    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second (the paper's scale-up unit)."""
        return self.metrics.throughput(skip_ticks)

    def ipc_bytes(self) -> int:
        """Measured driver<->shard bytes for the whole run.

        Real pickled payload sizes from the resident-shard protocol; 0 for
        runs on memory-sharing backends (nothing crossed a process
        boundary).
        """
        return self.metrics.total_ipc_bytes()


def run_script(
    script: str | Path,
    config: BraceConfig | None = None,
    *,
    class_name: str | None = None,
    effect_inversion: str = "auto",
    use_index: bool = True,
    index: str | None = "auto",
    ticks: int = 10,
    num_agents: int = 50,
    initial_states: Sequence[dict[str, Any]] | None = None,
    bounds: BBox | Sequence[Sequence[float]] | None = None,
    seed: int = 0,
) -> ScriptRunResult:
    """Compile a BRASIL script and run it on the BRACE runtime.

    Parameters
    ----------
    script:
        Path to a BRASIL file, or the source text itself.
    config:
        Base :class:`BraceConfig`; pick the executor backend here
        (``BraceConfig(executor="process", num_workers=8)``).  The
        script-derived knobs (``non_local_effects``, ``index``,
        ``cell_size``) are overridden from the compilation result;
        everything else — including ``resident_shards``, on by default for
        the process backend — passes through untouched.
    class_name, effect_inversion, use_index:
        Forwarded to :func:`~repro.brasil.compiler.compile_script`.
    index:
        ``"auto"`` (default) adopts the optimizer's selection; any other
        value (``"kdtree"``, ``"grid"``, ``"quadtree"`` or ``None``)
        forces that access path.
    ticks, num_agents, initial_states, bounds, seed:
        Simulation length and world construction — see
        :func:`build_script_world`.

    Returns a :class:`ScriptRunResult`; agent states are bit-identical for
    any executor backend given the same remaining arguments.

    This is a thin shim over the unified session layer: it is equivalent to
    ``Simulation.from_script(script, ...).run(ticks)`` (see
    :class:`repro.api.Simulation`), which additionally offers streaming
    ticks, observers and pause/resume.
    """
    from repro.api import Simulation

    session = Simulation.from_script(
        script,
        config=config,
        class_name=class_name,
        effect_inversion=effect_inversion,
        use_index=use_index,
        num_agents=num_agents,
        initial_states=initial_states,
        bounds=bounds,
        seed=seed,
    )
    if index != "auto":
        session.with_index(index)
    with session:
        result = session.run(int(ticks))
    assert session.compiled is not None
    return ScriptRunResult(
        compiled=session.compiled,
        world=session.world,
        config=session.config,
        metrics=result.metrics,
        ticks=int(ticks),
    )
