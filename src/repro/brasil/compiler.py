"""The BRASIL compiler: source text to an executable agent class.

``compile_script`` runs the full pipeline — parse, semantic analysis,
optional effect inversion, monad algebra translation and optimization — and
packages the result as a :class:`CompiledScript` whose ``agent_class`` is a
regular :class:`~repro.core.agent.Agent` subclass.  Instances of that class
run unchanged on the sequential engine, on the Appendix A MapReduce jobs and
on the BRACE runtime: this is the transparency BRASIL gives domain
scientists.

Although the agent classes are built dynamically (there is no module the
process executor could re-import them from), their *instances* are picklable:
each class carries its :class:`AgentClassSpec` — the source text plus the
compiler options, pure data — and pickling an agent ships the spec instead of
the class.  The receiving process recompiles the script once (cached per
spec) and rebuilds the agent from its state dict, so compiled BRASIL scripts
run on the serial, thread and process executors alike.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any

from repro.brasil.ast_nodes import ClassDecl, Script
from repro.brasil.effect_inversion import EffectInversionError, InversionResult, invert_effects
from repro.brasil.interpreter import Environment, evaluate, execute_block
from repro.brasil.optimizer import (
    IndexSelection,
    OptimizedPlan,
    PlanSelection,
    optimize_plan,
    select_index,
    select_plan,
)
from repro.brasil.parser import parse
from repro.brasil.semantics import ScriptInfo, analyze_class
from repro.brasil.translate import PlanQueryTask, TranslationNotSupported, translate_query
from repro.core.agent import Agent, AgentMeta
from repro.core.errors import BrasilError
from repro.core.fields import EffectField, StateField

_DEFAULTS_BY_TYPE = {"float": 0.0, "int": 0, "bool": False}


@dataclass(frozen=True)
class AgentClassSpec:
    """Everything needed to rebuild a compiled agent class in another process.

    The spec is pure data (no closures, no class objects), following the same
    discipline as the task objects in :mod:`repro.mapreduce.simulation_job`.
    Compilation is deterministic, so two processes compiling the same spec
    build behaviourally identical classes.
    """

    source: str
    class_name: str
    effect_inversion: str = "auto"
    use_index: bool = True


#: Compiled agent classes by spec.  Populated by every compile and by
#: :func:`compiled_class_for_spec`, so all agents built or unpickled from
#: the same spec in one process share a single class object.  Values are
#: weak: once nothing references a class (no CompiledScript, no agents), the
#: entry is dropped instead of retaining every script ever compiled — the
#: next unpickle simply recompiles.
_CLASS_REGISTRY: "weakref.WeakValueDictionary[AgentClassSpec, type]" = (
    weakref.WeakValueDictionary()
)


def compiled_class_for_spec(spec: AgentClassSpec) -> type:
    """Return the agent class for ``spec``, compiling it on first use.

    This is the unpickling side of the compiled-agent protocol: worker
    processes call it (through :func:`_rebuild_compiled_agent`) to
    reconstruct the dynamic class from the shipped source text.
    """
    agent_class = _CLASS_REGISTRY.get(spec)
    if agent_class is None:
        compiler = BrasilCompiler(
            effect_inversion=spec.effect_inversion,
            use_index=spec.use_index,
            translate_algebra=False,  # workers only need the interpreted path
        )
        compiled = compiler.compile(spec.source, class_name=spec.class_name)
        # compile() registered the class; read it back through the registry
        # so concurrent rebuilds agree on one class object.
        agent_class = _CLASS_REGISTRY.setdefault(spec, compiled.agent_class)
    return agent_class


def _rebuild_compiled_agent(spec: AgentClassSpec):
    """Create an empty compiled-agent instance (pickle then applies the state)."""
    agent_class = compiled_class_for_spec(spec)
    return agent_class.__new__(agent_class)


class BrasilAgentBase(Agent):
    """Base class of every compiled BRASIL agent.

    The class attributes ``_run_body``, ``_update_rules`` and
    ``_restrict_to_visible`` are filled in by the compiler; ``query`` and
    ``update`` interpret them with :mod:`repro.brasil.interpreter`.
    """

    _run_body = None
    _update_rules: dict[str, Any] = {}
    _restrict_to_visible = True
    _compile_spec: AgentClassSpec | None = None

    def __reduce__(self):
        """Pickle by compile spec + state so instances cross process boundaries.

        The dynamic class cannot be pickled by reference; shipping the spec
        and the instance ``__dict__`` instead makes compiled agents first
        class citizens of the process executor.
        """
        spec = type(self)._compile_spec
        if spec is None:
            return super().__reduce__()
        return (_rebuild_compiled_agent, (spec,), dict(self.__dict__))

    def query(self, ctx) -> None:
        """Execute the compiled ``run()`` method (the query phase)."""
        if self._run_body is None:
            return
        environment = Environment(
            agent=self,
            query_context=ctx,
            rng=ctx.rng(self),
            restrict_to_visible=self._restrict_to_visible,
        )
        execute_block(self._run_body, environment)

    def update(self, ctx) -> None:
        """Evaluate every state field's update rule against the pre-update state."""
        rules = self._update_rules
        if not rules:
            return
        environment = Environment(agent=self, rng=ctx.rng(self))
        new_values: dict[str, Any] = {}
        for field_name, rule in rules.items():
            value = evaluate(rule, environment)
            if value is not None:  # NIL keeps the previous value
                new_values[field_name] = value
        for field_name, value in new_values.items():
            setattr(self, field_name, value)


@dataclass
class CompiledScript:
    """Everything the compiler produced for one BRASIL class."""

    source: str
    script: Script
    original_class_decl: ClassDecl
    class_decl: ClassDecl
    original_info: ScriptInfo
    info: ScriptInfo
    agent_class: type
    inversion: InversionResult | None = None
    algebra_plan: Any | None = None
    optimized_plan: OptimizedPlan | None = None
    spec: AgentClassSpec | None = None
    index_selection: IndexSelection | None = None
    #: Which phases the plan compiler proved kernel-compilable (advisory:
    #: the runtime re-derives feasibility per class; see
    #: :class:`~repro.brasil.optimizer.PlanSelection`).
    plan_selection: PlanSelection | None = None

    @property
    def class_name(self) -> str:
        """Name of the compiled agent class."""
        return self.class_decl.name

    @property
    def query_task(self) -> PlanQueryTask | None:
        """A picklable task evaluating the optimized query plan, if one exists.

        The task carries only algebra dataclasses (pure data), so it runs on
        every executor backend, process pool included.
        """
        if self.optimized_plan is None:
            return None
        return PlanQueryTask(self.optimized_plan.plan)

    @property
    def has_non_local_effects(self) -> bool:
        """True when the *compiled* script still performs non-local effect assignments.

        When this is False (either the original script was local-only or
        effect inversion removed the non-local assignments), BRACE can run a
        single reduce pass per tick.
        """
        return self.info.has_non_local_effects

    @property
    def was_inverted(self) -> bool:
        """True when effect inversion rewrote the script."""
        return self.inversion is not None and self.inversion.inverted

    def brace_config_overrides(self) -> dict[str, Any]:
        """Configuration the BRACE runtime should adopt for this script.

        Besides the reduce-pass structure (``non_local_effects``), this
        threads the optimizer's access-path choice through to the query
        phase: the spatial index — and with it the join algorithm answering
        each ``foreach`` — is driven by the script's visible-region
        declarations rather than a hand-picked default.
        """
        overrides: dict[str, Any] = {"non_local_effects": self.has_non_local_effects}
        if self.index_selection is not None:
            overrides["index"] = self.index_selection.index
            overrides["cell_size"] = self.index_selection.cell_size
            if self.index_selection.spatial_backend is not None:
                # Only a positive pin is an override; "no opinion" must not
                # stomp a backend the caller configured explicitly.
                overrides["spatial_backend"] = self.index_selection.spatial_backend
        return overrides

    def make_agent(self, agent_id: int | None = None, **state_values: Any):
        """Instantiate one agent with the given initial state."""
        return self.agent_class(agent_id=agent_id, **state_values)


class BrasilCompiler:
    """Compiles BRASIL source text into executable agent classes.

    Parameters
    ----------
    effect_inversion:
        ``"auto"`` (invert when the script has non-local assignments and the
        rewrite applies, otherwise keep the two-pass plan), ``"on"`` (require
        inversion, raising when it is impossible) or ``"off"``.
    use_index:
        When True (the default), ``foreach`` over an extent is restricted to
        the agent's visible region, letting the engine's spatial index answer
        it as an orthogonal range query.  When False the whole extent is
        scanned — the "no indexing" configuration of Figures 3 and 4.
    translate_algebra:
        When True the query script is also translated to a monad algebra plan
        and optimized; scripts outside the translatable subset silently skip
        this step (the interpreted path is always available).
    """

    def __init__(
        self,
        effect_inversion: str = "auto",
        use_index: bool = True,
        translate_algebra: bool = True,
    ):
        if effect_inversion not in ("auto", "on", "off"):
            raise BrasilError("effect_inversion must be 'auto', 'on' or 'off'")
        self.effect_inversion = effect_inversion
        self.use_index = use_index
        self.translate_algebra = translate_algebra

    def compile(self, source: str, class_name: str | None = None) -> CompiledScript:
        """Compile ``source``; ``class_name`` selects the class in multi-class scripts."""
        script = parse(source)
        declaration = self._select_class(script, class_name)
        original_info = analyze_class(declaration)

        inversion: InversionResult | None = None
        compiled_decl = declaration
        if original_info.has_non_local_effects and self.effect_inversion != "off":
            try:
                inversion = invert_effects(declaration)
                compiled_decl = inversion.class_decl
            except EffectInversionError:
                if self.effect_inversion == "on":
                    raise
                inversion = None
                compiled_decl = declaration

        info = analyze_class(compiled_decl) if compiled_decl is not declaration else original_info
        spec = AgentClassSpec(
            source=source,
            class_name=declaration.name,
            effect_inversion=self.effect_inversion,
            use_index=self.use_index,
        )
        # Recompiles of the same spec adopt the registered class, so
        # ``type(unpickled_agent) is compiled.agent_class`` holds no matter
        # how many times (or in which process) the script was compiled.
        agent_class = _CLASS_REGISTRY.setdefault(
            spec, self._build_agent_class(compiled_decl, info, spec)
        )

        algebra_plan = None
        optimized_plan = None
        if self.translate_algebra:
            try:
                algebra_plan = translate_query(compiled_decl, info)
                optimized_plan = optimize_plan(algebra_plan)
            except TranslationNotSupported:
                algebra_plan = None
                optimized_plan = None

        return CompiledScript(
            source=source,
            script=script,
            original_class_decl=declaration,
            class_decl=compiled_decl,
            original_info=original_info,
            info=info,
            agent_class=agent_class,
            inversion=inversion,
            algebra_plan=algebra_plan,
            optimized_plan=optimized_plan,
            spec=spec,
            index_selection=select_index(info) if self.use_index else IndexSelection(
                index=None,
                cell_size=None,
                reason="indexing disabled by the compiler (use_index=False)",
            ),
            plan_selection=select_plan(
                compiled_decl, info, restrict_to_visible=self.use_index
            ),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _select_class(script: Script, class_name: str | None) -> ClassDecl:
        if class_name is None:
            if len(script.classes) != 1:
                raise BrasilError(
                    "the script declares several classes; pass class_name to choose one"
                )
            return script.classes[0]
        declaration = script.class_named(class_name)
        if declaration is None:
            raise BrasilError(f"no class named {class_name!r} in the script")
        return declaration

    def _build_agent_class(
        self, declaration: ClassDecl, info: ScriptInfo, spec: AgentClassSpec | None = None
    ) -> type:
        namespace: dict[str, Any] = {
            "__doc__": f"Agent class compiled from the BRASIL class {declaration.name!r}.",
            "__module__": __name__,
        }
        for field_decl in declaration.state_fields():
            namespace[field_decl.name] = StateField(
                default=_DEFAULTS_BY_TYPE.get(field_decl.type_name, 0.0),
                spatial=field_decl.is_spatial,
                visibility=field_decl.visibility_radius(),
                reachability=field_decl.reachability_radius(),
                doc=f"BRASIL state field ({field_decl.type_name})",
            )
        for field_decl in declaration.effect_fields():
            namespace[field_decl.name] = EffectField(
                field_decl.combinator, doc=f"BRASIL effect field ({field_decl.type_name})"
            )

        run_method = declaration.run_method()
        namespace["_run_body"] = run_method.body if run_method is not None else None
        namespace["_update_rules"] = {
            field_decl.name: field_decl.update_rule
            for field_decl in declaration.state_fields()
            if field_decl.update_rule is not None
        }
        namespace["_restrict_to_visible"] = self.use_index
        namespace["_class_decl"] = declaration
        namespace["_script_info"] = info
        namespace["_compile_spec"] = spec
        return AgentMeta(declaration.name, (BrasilAgentBase,), namespace)


def compile_script(
    source: str,
    class_name: str | None = None,
    effect_inversion: str = "auto",
    use_index: bool = True,
    translate_algebra: bool = True,
) -> CompiledScript:
    """Compile a BRASIL script (convenience wrapper around :class:`BrasilCompiler`)."""
    compiler = BrasilCompiler(
        effect_inversion=effect_inversion,
        use_index=use_index,
        translate_algebra=translate_algebra,
    )
    return compiler.compile(source, class_name=class_name)
