"""Tree-walking evaluator for compiled BRASIL scripts.

The compiler (see :mod:`repro.brasil.compiler`) produces an
:class:`~repro.core.agent.Agent` subclass whose ``query`` and ``update``
methods delegate to this interpreter.  NIL semantics follow the paper: an
undefined value (reading a field of a NIL agent reference, division by zero)
evaluates to NIL, NIL propagates through arithmetic, and assigning NIL to an
effect field is a no-op (aggregates ignore NIL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.brasil.ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    BoolLit,
    Call,
    Conditional,
    EffectAssign,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    Name,
    NumberLit,
    Stmt,
    UnaryOp,
)
from repro.brasil.builtins import BUILTIN_FUNCTIONS
from repro.core.errors import BrasilRuntimeError


@dataclass
class Environment:
    """Evaluation context for one agent executing one phase of one tick."""

    agent: Any
    query_context: Any = None
    rng: np.random.Generator | None = None
    locals: dict[str, Any] = field(default_factory=dict)
    #: Names of agent-typed bindings (foreach variables, agent-typed consts).
    agent_bindings: dict[str, Any] = field(default_factory=dict)
    #: When True, foreach over an Extent is restricted (by the spatial index)
    #: to the agent's visible region — the BRACE implementation of visibility.
    restrict_to_visible: bool = True

    def child(self) -> "Environment":
        """A copy sharing the agent but with copied local scopes."""
        return Environment(
            agent=self.agent,
            query_context=self.query_context,
            rng=self.rng,
            locals=dict(self.locals),
            agent_bindings=dict(self.agent_bindings),
            restrict_to_visible=self.restrict_to_visible,
        )


def _is_nil(value: Any) -> bool:
    return value is None


def evaluate(expression: Expr, env: Environment) -> Any:
    """Evaluate one BRASIL expression."""
    if isinstance(expression, NumberLit):
        return expression.value
    if isinstance(expression, BoolLit):
        return expression.value
    if isinstance(expression, Name):
        return _evaluate_name(expression.identifier, env)
    if isinstance(expression, FieldAccess):
        target = evaluate(expression.target, env)
        if _is_nil(target):
            return None
        try:
            return getattr(target, expression.field_name)
        except AttributeError:
            raise BrasilRuntimeError(
                f"agent {type(target).__name__} has no field {expression.field_name!r}"
            ) from None
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, env)
    if isinstance(expression, UnaryOp):
        operand = evaluate(expression.operand, env)
        if _is_nil(operand):
            return None
        if expression.operator == "-":
            return -operand
        if expression.operator == "!":
            return not operand
        raise BrasilRuntimeError(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, Call):
        return _evaluate_call(expression, env)
    if isinstance(expression, Conditional):
        condition = evaluate(expression.condition, env)
        if _is_nil(condition):
            return None
        return evaluate(expression.then_expr if condition else expression.else_expr, env)
    raise BrasilRuntimeError(f"cannot evaluate expression node {type(expression).__name__}")


def _evaluate_name(identifier: str, env: Environment) -> Any:
    if identifier == "this":
        return env.agent
    if identifier in env.agent_bindings:
        return env.agent_bindings[identifier]
    if identifier in env.locals:
        return env.locals[identifier]
    try:
        return getattr(env.agent, identifier)
    except AttributeError:
        raise BrasilRuntimeError(f"unknown name {identifier!r}") from None


def _evaluate_binary(expression: BinaryOp, env: Environment) -> Any:
    operator = expression.operator
    # Short-circuit logical operators.
    if operator == "&&":
        left = evaluate(expression.left, env)
        if _is_nil(left):
            return None
        if not left:
            return False
        right = evaluate(expression.right, env)
        return None if _is_nil(right) else bool(right)
    if operator == "||":
        left = evaluate(expression.left, env)
        if _is_nil(left):
            return None
        if left:
            return True
        right = evaluate(expression.right, env)
        return None if _is_nil(right) else bool(right)

    left = evaluate(expression.left, env)
    right = evaluate(expression.right, env)
    if _is_nil(left) or _is_nil(right):
        return None
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            return None  # division by zero is NIL
        return left / right
    if operator == "%":
        if right == 0:
            return None
        return left % right
    if operator == "==":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == ">":
        return left > right
    if operator == "<=":
        return left <= right
    if operator == ">=":
        return left >= right
    raise BrasilRuntimeError(f"unknown binary operator {operator!r}")


def _evaluate_call(expression: Call, env: Environment) -> Any:
    if expression.function == "rand":
        if env.rng is None:
            raise BrasilRuntimeError("rand() called without a random stream")
        return float(env.rng.random())
    if expression.function == "visible":
        # visible(a, b): True when agent b lies within a's visible region.
        if len(expression.arguments) != 2:
            raise BrasilRuntimeError("visible() takes exactly two agent arguments")
        first = evaluate(expression.arguments[0], env)
        second = evaluate(expression.arguments[1], env)
        if _is_nil(first) or _is_nil(second):
            return None
        region = first.visible_region()
        return True if region is None else region.contains_point(second.position())
    function = BUILTIN_FUNCTIONS.get(expression.function)
    if function is None:
        raise BrasilRuntimeError(f"unknown function {expression.function!r}")
    arguments = [evaluate(argument, env) for argument in expression.arguments]
    if any(_is_nil(argument) for argument in arguments):
        return None
    try:
        return function(*arguments)
    except (ValueError, OverflowError):
        return None


def execute_block(block: Block, env: Environment) -> None:
    """Execute every statement in a block."""
    for statement in block.statements:
        execute_statement(statement, env)


def execute_statement(statement: Stmt, env: Environment) -> None:
    """Execute one statement of a query script."""
    if isinstance(statement, Block):
        execute_block(statement, env)
        return
    if isinstance(statement, LocalDecl):
        value = evaluate(statement.initializer, env)
        # Agent-valued locals are tracked separately so field accesses work.
        if value is not None and hasattr(value, "agent_id") and hasattr(value, "position"):
            env.agent_bindings[statement.name] = value
        else:
            env.locals[statement.name] = value
        return
    if isinstance(statement, Assign):
        if statement.name not in env.locals and statement.name not in env.agent_bindings:
            raise BrasilRuntimeError(f"assignment to undeclared local {statement.name!r}")
        env.locals[statement.name] = evaluate(statement.value, env)
        return
    if isinstance(statement, EffectAssign):
        target = env.agent
        if statement.target_agent is not None:
            target = evaluate(statement.target_agent, env)
        if _is_nil(target):
            return  # weak reference resolved to NIL: the assignment is dropped
        value = evaluate(statement.value, env)
        if _is_nil(value):
            return  # NIL values are ignored by effect aggregation
        setattr(target, statement.field_name, value)
        return
    if isinstance(statement, ForEach):
        extent = _resolve_extent(statement.element_type, env)
        for other in extent:
            env.agent_bindings[statement.variable] = other
            execute_block(statement.body, env)
        env.agent_bindings.pop(statement.variable, None)
        return
    if isinstance(statement, If):
        condition = evaluate(statement.condition, env)
        if not _is_nil(condition) and condition:
            execute_block(statement.then_block, env)
        elif statement.else_block is not None:
            execute_block(statement.else_block, env)
        return
    if isinstance(statement, ExprStmt):
        evaluate(statement.expression, env)
        return
    raise BrasilRuntimeError(f"cannot execute statement node {type(statement).__name__}")


def _resolve_extent(element_type: str, env: Environment) -> list[Any]:
    """The agents a ``foreach`` ranges over.

    With bounded visibility the extent is restricted to the agent's visible
    region (references outside it would resolve to NIL anyway — Theorem 1);
    otherwise the whole extent is scanned.  The active agent itself is never
    part of the extent.
    """
    context = env.query_context
    if context is None:
        raise BrasilRuntimeError("foreach used outside of the query phase")
    agent = env.agent
    if agent.has_bounded_visibility():
        if env.restrict_to_visible:
            # Index-assisted orthogonal range query (the optimized plan).
            candidates = context.visible(agent)
        else:
            # Un-indexed plan: scan the whole extent and test each candidate
            # against the visible region — same semantics, quadratic cost.
            region = agent.visible_region()
            candidates = [
                other
                for other in context.agents()
                if other is not agent and region.contains_point(other.position())
            ]
    else:
        candidates = [other for other in context.agents() if other is not agent]
    return [other for other in candidates if type(other).__name__ == element_type]
