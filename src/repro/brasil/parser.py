"""Recursive-descent parser for BRASIL."""

from __future__ import annotations

from repro.brasil.ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    BoolLit,
    Call,
    ClassDecl,
    Conditional,
    EffectAssign,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldDecl,
    ForEach,
    If,
    LocalDecl,
    MethodDecl,
    Name,
    NumberLit,
    RangeConstraint,
    Script,
    UnaryOp,
)
from repro.brasil.lexer import tokenize
from repro.brasil.tokens import Token, TokenType
from repro.core.errors import BrasilSyntaxError

_PRIMITIVE_TYPES = {"float", "int", "bool"}
_EFFECT_COMBINATORS = {"sum", "count", "min", "max", "mean", "product", "any", "all"}


class Parser:
    """Parses a token stream into a :class:`~repro.brasil.ast_nodes.Script`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _check(self, token_type: TokenType, text: str | None = None) -> bool:
        token = self._peek()
        if token.type is not token_type:
            return False
        return text is None or token.text == text

    def _match(self, token_type: TokenType, text: str | None = None) -> Token | None:
        if self._check(token_type, text):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(token_type, text):
            expected = text if text is not None else token_type.value
            raise BrasilSyntaxError(
                f"expected {expected!r} but found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        return self._expect(TokenType.IDENT, keyword)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_script(self) -> Script:
        """Parse a whole compilation unit."""
        script = Script()
        while not self._check(TokenType.EOF):
            script.classes.append(self.parse_class())
        if not script.classes:
            raise BrasilSyntaxError("a BRASIL script must declare at least one class")
        return script

    def parse_class(self) -> ClassDecl:
        """Parse one ``class`` declaration."""
        self._expect_keyword("class")
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LBRACE)
        declaration = ClassDecl(name=name)
        while not self._check(TokenType.RBRACE):
            self._parse_member(declaration)
        self._expect(TokenType.RBRACE)
        return declaration

    def _parse_member(self, declaration: ClassDecl) -> None:
        access_token = self._peek()
        access = "public"
        if access_token.type is TokenType.IDENT and access_token.text in ("public", "private"):
            access = self._advance().text

        token = self._peek()
        if token.type is TokenType.IDENT and token.text in ("state", "effect"):
            field = self._parse_field(access)
            declaration.fields.append(field)
            self._attach_trailing_annotations(field)
        else:
            declaration.methods.append(self._parse_method(access))

    # ------------------------------------------------------------------
    # Fields
    # ------------------------------------------------------------------
    def _parse_field(self, access: str) -> FieldDecl:
        kind = self._advance().text  # "state" or "effect"
        type_name = self._expect(TokenType.IDENT).text
        if type_name not in _PRIMITIVE_TYPES:
            raise BrasilSyntaxError(
                f"unsupported field type {type_name!r}", self._peek().line, self._peek().column
            )
        name = self._expect(TokenType.IDENT).text
        field = FieldDecl(access=access, kind=kind, type_name=type_name, name=name)

        if self._match(TokenType.COLON):
            if kind == "effect":
                combinator_token = self._expect(TokenType.IDENT)
                if combinator_token.text not in _EFFECT_COMBINATORS:
                    raise BrasilSyntaxError(
                        f"unknown effect combinator {combinator_token.text!r}",
                        combinator_token.line,
                        combinator_token.column,
                    )
                field.combinator = combinator_token.text
            else:
                field.update_rule = self.parse_expression()

        # Annotations appearing before the terminating semicolon.
        while self._check(TokenType.HASH):
            field.constraints.append(self._parse_annotation())
        self._expect(TokenType.SEMICOLON)
        return field

    def _attach_trailing_annotations(self, field: FieldDecl) -> None:
        """Attach ``#range[...]`` clauses written after the field's semicolon."""
        while self._check(TokenType.HASH):
            field.constraints.append(self._parse_annotation())
            self._match(TokenType.SEMICOLON)

    def _parse_annotation(self) -> RangeConstraint:
        self._expect(TokenType.HASH)
        kind = self._expect(TokenType.IDENT).text
        if kind not in ("range", "visibility", "reachability"):
            raise BrasilSyntaxError(f"unknown annotation #{kind}", self._peek().line)
        self._expect(TokenType.LBRACKET)
        low = self._parse_signed_number()
        high = low
        if self._match(TokenType.COMMA):
            high = self._parse_signed_number()
        else:
            low, high = -abs(low), abs(low)
        self._expect(TokenType.RBRACKET)
        if low > high:
            raise BrasilSyntaxError(f"annotation interval [{low}, {high}] has low > high")
        return RangeConstraint(kind=kind, low=low, high=high)

    def _parse_signed_number(self) -> float:
        sign = 1.0
        if self._match(TokenType.MINUS):
            sign = -1.0
        elif self._match(TokenType.PLUS):
            sign = 1.0
        token = self._expect(TokenType.NUMBER)
        return sign * float(token.value)

    # ------------------------------------------------------------------
    # Methods and statements
    # ------------------------------------------------------------------
    def _parse_method(self, access: str) -> MethodDecl:
        return_type = self._expect(TokenType.IDENT).text
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LPAREN)
        parameters: list[tuple[str, str]] = []
        if not self._check(TokenType.RPAREN):
            while True:
                parameter_type = self._expect(TokenType.IDENT).text
                parameter_name = self._expect(TokenType.IDENT).text
                parameters.append((parameter_type, parameter_name))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        body = self.parse_block()
        return MethodDecl(
            access=access, return_type=return_type, name=name, parameters=parameters, body=body
        )

    def parse_block(self) -> Block:
        """Parse a ``{ ... }`` block."""
        self._expect(TokenType.LBRACE)
        block = Block()
        while not self._check(TokenType.RBRACE):
            block.statements.append(self.parse_statement())
        self._expect(TokenType.RBRACE)
        return block

    def parse_statement(self):
        """Parse a single statement."""
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self.parse_block()
        if token.type is TokenType.IDENT:
            if token.text == "foreach":
                return self._parse_foreach()
            if token.text == "if":
                return self._parse_if()
            if token.text == "const":
                return self._parse_local_decl(expect_const=True)
            if token.text in _PRIMITIVE_TYPES:
                return self._parse_local_decl(expect_const=False)
            # ``Type name = expr;`` (agent-typed local without const)
            next_token = self._peek(1)
            after = self._peek(2)
            if (
                next_token.type is TokenType.IDENT
                and after.type is TokenType.ASSIGN
                and token.text not in ("this",)
            ):
                return self._parse_local_decl(expect_const=False)
        return self._parse_simple_statement()

    def _parse_local_decl(self, expect_const: bool) -> LocalDecl:
        is_const = False
        if expect_const:
            self._expect_keyword("const")
            is_const = True
        type_name = self._expect(TokenType.IDENT).text
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.ASSIGN)
        initializer = self.parse_expression()
        self._expect(TokenType.SEMICOLON)
        return LocalDecl(type_name=type_name, name=name, initializer=initializer, is_const=is_const)

    def _parse_foreach(self) -> ForEach:
        self._expect_keyword("foreach")
        self._expect(TokenType.LPAREN)
        element_type = self._expect(TokenType.IDENT).text
        variable = self._expect(TokenType.IDENT).text
        self._expect(TokenType.COLON)
        self._expect_keyword("Extent")
        self._expect(TokenType.LT)
        extent_type = self._expect(TokenType.IDENT).text
        self._expect(TokenType.GT)
        self._expect(TokenType.RPAREN)
        if extent_type != element_type:
            raise BrasilSyntaxError(
                f"foreach variable type {element_type!r} does not match Extent<{extent_type}>"
            )
        body = self.parse_block()
        return ForEach(element_type=element_type, variable=variable, body=body)

    def _parse_if(self) -> If:
        self._expect_keyword("if")
        self._expect(TokenType.LPAREN)
        condition = self.parse_expression()
        self._expect(TokenType.RPAREN)
        then_block = self._parse_block_or_statement()
        else_block = None
        if self._check(TokenType.IDENT, "else"):
            self._advance()
            else_block = self._parse_block_or_statement()
        return If(condition=condition, then_block=then_block, else_block=else_block)

    def _parse_block_or_statement(self) -> Block:
        if self._check(TokenType.LBRACE):
            return self.parse_block()
        return Block(statements=[self.parse_statement()])

    def _parse_simple_statement(self):
        expression = self.parse_expression()
        if self._match(TokenType.EFFECT_ASSIGN):
            value = self.parse_expression()
            self._expect(TokenType.SEMICOLON)
            if isinstance(expression, Name):
                return EffectAssign(target_agent=None, field_name=expression.identifier, value=value)
            if isinstance(expression, FieldAccess):
                return EffectAssign(
                    target_agent=expression.target, field_name=expression.field_name, value=value
                )
            raise BrasilSyntaxError("the target of '<-' must be an effect field")
        if self._match(TokenType.ASSIGN):
            value = self.parse_expression()
            self._expect(TokenType.SEMICOLON)
            if not isinstance(expression, Name):
                raise BrasilSyntaxError("only local variables can be reassigned with '='")
            return Assign(name=expression.identifier, value=value)
        self._expect(TokenType.SEMICOLON)
        return ExprStmt(expression=expression)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expr:
        """Parse an expression (entry point: the ternary conditional)."""
        return self._parse_conditional()

    def _parse_conditional(self) -> Expr:
        condition = self._parse_or()
        if self._match(TokenType.QUESTION):
            then_expr = self.parse_expression()
            self._expect(TokenType.COLON)
            else_expr = self.parse_expression()
            return Conditional(condition=condition, then_expr=then_expr, else_expr=else_expr)
        return condition

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._match(TokenType.OR):
            left = BinaryOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self._match(TokenType.AND):
            left = BinaryOp("&&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_comparison()
        while True:
            if self._match(TokenType.EQ):
                left = BinaryOp("==", left, self._parse_comparison())
            elif self._match(TokenType.NE):
                left = BinaryOp("!=", left, self._parse_comparison())
            else:
                return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        while True:
            if self._match(TokenType.LT):
                left = BinaryOp("<", left, self._parse_additive())
            elif self._match(TokenType.GT):
                left = BinaryOp(">", left, self._parse_additive())
            elif self._match(TokenType.LE):
                left = BinaryOp("<=", left, self._parse_additive())
            elif self._match(TokenType.GE):
                left = BinaryOp(">=", left, self._parse_additive())
            else:
                return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self._match(TokenType.PLUS):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._match(TokenType.MINUS):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self._match(TokenType.STAR):
                left = BinaryOp("*", left, self._parse_unary())
            elif self._match(TokenType.SLASH):
                left = BinaryOp("/", left, self._parse_unary())
            elif self._match(TokenType.PERCENT):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._match(TokenType.MINUS):
            return UnaryOp("-", self._parse_unary())
        if self._match(TokenType.NOT):
            return UnaryOp("!", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expression = self._parse_primary()
        while self._match(TokenType.DOT):
            field_name = self._expect(TokenType.IDENT).text
            expression = FieldAccess(target=expression, field_name=field_name)
        return expression

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLit(value=token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            expression = self.parse_expression()
            self._expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENT:
            self._advance()
            if token.text == "true":
                return BoolLit(True)
            if token.text == "false":
                return BoolLit(False)
            if self._check(TokenType.LPAREN):
                self._advance()
                arguments: list[Expr] = []
                if not self._check(TokenType.RPAREN):
                    while True:
                        arguments.append(self.parse_expression())
                        if not self._match(TokenType.COMMA):
                            break
                self._expect(TokenType.RPAREN)
                return Call(function=token.text, arguments=arguments)
            return Name(identifier=token.text)
        raise BrasilSyntaxError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str) -> Script:
    """Parse BRASIL source text into an AST."""
    return Parser(tokenize(source)).parse_script()
