"""Algebraic optimization of monad algebra plans.

The paper compiles BRASIL to the monad algebra precisely so that classical
rewrites can be applied (Section 4.2).  This module implements the rewrites
relevant to the plans produced by :mod:`repro.brasil.translate`:

* **identity elimination** — ``ID ; f → f`` and ``f ; ID → f``;
* **composition normalization** — left-nested compositions are re-associated
  so later rules see canonical shapes;
* **map fusion** — ``MAP(f) ; MAP(g) → MAP(f ; g)``;
* **singleton flattening** — ``SNG ; FLATMAP(f) → f`` (a foreach over a
  singleton collection is the body itself, equation (11));
* **selection fusion** — ``σ(p) ; σ(q) → σ(p && q)``;
* **dead-tuple elimination** — ``⟨a: f, ...⟩ ; π_a → f`` (tuples built only
  to be projected away are removed).

The optimizer applies the rules bottom-up until a fixpoint is reached and
reports how many rewrites fired, which the optimization tests assert on.

Besides plan rewrites, the optimizer performs *access-path selection*
(:func:`select_index`): from the script's visible-region declarations it
decides which spatial index — and therefore which spatial-join algorithm in
:mod:`repro.spatial.join` — should answer the ``foreach`` range queries of
the query phase.  The choice rides on :class:`IndexSelection` through
``CompiledScript.brace_config_overrides()`` into the runtime configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.brasil.algebra import (
    AlgebraOp,
    Arith,
    Compose,
    FlatMap,
    Identity,
    MapOp,
    Project,
    Select,
    Sng,
    TupleCons,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.brasil.ast_nodes import ClassDecl
    from repro.brasil.semantics import ScriptInfo


@dataclass(frozen=True)
class IndexSelection:
    """The access path chosen for the query phase's spatial join.

    ``index`` / ``cell_size`` / ``spatial_backend`` plug directly into
    :class:`~repro.core.context.QueryContext` and
    :class:`~repro.brace.config.BraceConfig`; ``reason`` records why the
    optimizer picked this path (surfaced by ``examples/brasil_parallel.py``).
    """

    index: str | None
    cell_size: float | None
    reason: str
    #: ``"vectorized"`` when the columnar batch kernels should execute the
    #: join, ``None`` to let the runtime choose per extent size.
    spatial_backend: str | None = None


def select_index(info: "ScriptInfo") -> IndexSelection:
    """Choose the spatial index answering the script's ``foreach`` queries.

    The decision follows the declared visible regions:

    * no spatial fields — there is no geometry, nothing to index;
    * unbounded visibility — every ``foreach`` must scan the whole extent, so
      an index would be built but never prune anything;
    * uniform visibility radii — a uniform grid with cell size equal to the
      visibility diameter answers each visible-region query by probing a
      constant number of cells; the *vectorized* columnar grid additionally
      amortizes the per-probe interpreter overhead (its cost profile is
      roughly :data:`repro.harness.registry.VECTORIZED_GRID_COSTS`: O(n)
      snapshot + one batched kernel for all n probes, versus n interpreted
      probes), so the backend is pinned to ``"vectorized"``;
    * anisotropic radii — a k-d tree handles per-dimension bounds without
      committing to one cell size; the backend is left to the runtime's
      per-extent auto selection.
    """
    if not info.spatial_field_names:
        return IndexSelection(
            index=None,
            cell_size=None,
            reason="no spatial fields declared; the extent has no geometry to index",
        )
    if not info.has_bounded_visibility:
        return IndexSelection(
            index=None,
            cell_size=None,
            reason=(
                "unbounded visibility: every foreach scans the whole extent, "
                "an index would never prune candidates"
            ),
        )
    radii = [info.visibility_radii[name] for name in info.spatial_field_names]
    if len(set(radii)) == 1 and radii[0] > 0:
        return IndexSelection(
            index="grid",
            cell_size=2.0 * radii[0],
            reason=(
                f"uniform visibility radius {radii[0]:g}: a grid with cell size "
                "equal to the visibility diameter answers each visible-region "
                "query with a constant number of cell probes; the vectorized "
                "columnar grid answers all probes of a tick in one batched "
                "kernel (O(n) snapshot amortized over n probes)"
            ),
            spatial_backend="vectorized",
        )
    return IndexSelection(
        index="kdtree",
        cell_size=None,
        reason=(
            "anisotropic visibility radii "
            f"{sorted(set(radii))}: a k-d tree range query handles "
            "per-dimension bounds without committing to one grid cell size"
        ),
    )


@dataclass(frozen=True)
class PlanSelection:
    """Which phases of a script the plan compiler proved kernel-compilable.

    Advisory (it does not pin ``BraceConfig.plan_backend``): the runtime
    re-derives kernel feasibility per agent class from the same proof, so
    the selection merely *reports* what ``plan_backend=None`` will do for
    this script.  ``reason`` records why, mirroring :class:`IndexSelection`.
    """

    query_compiled: bool
    update_compiled: bool
    reason: str


def select_plan(
    class_decl: "ClassDecl", info: "ScriptInfo", restrict_to_visible: bool = True
) -> PlanSelection:
    """Decide which phases compile to whole-phase columnar kernels.

    Feasibility comes from :func:`repro.brasil.translate.translate_plan_kernels`
    — a phase is compilable exactly when a kernel provably bit-identical to
    the interpreter exists for it.
    """
    from repro.brasil.translate import translate_plan_kernels

    query_kernel, update_kernel = translate_plan_kernels(
        class_decl, info, restrict_to_visible=restrict_to_visible
    )
    if query_kernel is not None and update_kernel is not None:
        reason = (
            "both phases are inside the provable subset: effect aggregation "
            "runs as scatter-reductions over the spatial join's match lists, "
            "update rules as column math over a structure-of-arrays snapshot"
        )
    elif query_kernel is not None:
        reason = (
            "query phase compiles to a scatter-reduction kernel; the update "
            "rules use a construct outside the provable subset and stay "
            "interpreted"
        )
    elif update_kernel is not None:
        reason = (
            "update rules compile to columnar math; the query phase uses a "
            "construct outside the provable subset (rand(), nested foreach, "
            "loop-carried locals or unbounded visibility) and stays interpreted"
        )
    else:
        reason = (
            "neither phase is inside the provable subset; the interpreter "
            "(the path covering the whole language) executes both"
        )
    return PlanSelection(
        query_compiled=query_kernel is not None,
        update_compiled=update_kernel is not None,
        reason=reason,
    )


@dataclass
class OptimizationReport:
    """Counts of rewrite rule applications."""

    identity_eliminations: int = 0
    map_fusions: int = 0
    singleton_flattenings: int = 0
    selection_fusions: int = 0
    dead_tuple_eliminations: int = 0
    reassociations: int = 0

    @property
    def total(self) -> int:
        """Total number of rewrites applied."""
        return (
            self.identity_eliminations
            + self.map_fusions
            + self.singleton_flattenings
            + self.selection_fusions
            + self.dead_tuple_eliminations
            + self.reassociations
        )


@dataclass
class OptimizedPlan:
    """An optimized plan plus what happened to it."""

    plan: AlgebraOp
    report: OptimizationReport = field(default_factory=OptimizationReport)
    original_size: int = 0

    @property
    def optimized_size(self) -> int:
        """Number of operator nodes after optimization."""
        return self.plan.size()


class PlanOptimizer:
    """Applies the rewrite rules to a fixpoint."""

    def __init__(self):
        self.report = OptimizationReport()

    def optimize(self, plan: AlgebraOp) -> OptimizedPlan:
        """Optimize ``plan`` and return the rewritten plan with a report."""
        original_size = plan.size()
        current = plan
        # The rule set strictly shrinks or reshapes the plan, so a small
        # iteration bound is enough to reach the fixpoint.
        for _ in range(50):
            rewritten = self._rewrite(current)
            if repr(rewritten) == repr(current):
                current = rewritten
                break
            current = rewritten
        return OptimizedPlan(plan=current, report=self.report, original_size=original_size)

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def _rewrite(self, node: AlgebraOp) -> AlgebraOp:
        children = node.children()
        if children:
            node = node.replace_children([self._rewrite(child) for child in children])
        return self._rewrite_node(node)

    def _rewrite_node(self, node: AlgebraOp) -> AlgebraOp:
        if isinstance(node, Compose):
            # ID ; f  →  f     and     f ; ID  →  f
            if isinstance(node.first, Identity):
                self.report.identity_eliminations += 1
                return node.second
            if isinstance(node.second, Identity):
                self.report.identity_eliminations += 1
                return node.first
            # (a ; b) ; c  →  a ; (b ; c)
            if isinstance(node.first, Compose):
                self.report.reassociations += 1
                return self._rewrite_node(
                    Compose(node.first.first, Compose(node.first.second, node.second))
                )
            # SNG ; FLATMAP(f)  →  f
            if isinstance(node.first, Sng) and isinstance(node.second, FlatMap):
                self.report.singleton_flattenings += 1
                return node.second.body
            if isinstance(node.second, Compose):
                inner = node.second
                # SNG ; (FLATMAP(f) ; rest)  →  f ; rest
                if isinstance(node.first, Sng) and isinstance(inner.first, FlatMap):
                    self.report.singleton_flattenings += 1
                    return self._rewrite_node(Compose(inner.first.body, inner.second))
                # MAP(f) ; (MAP(g) ; rest)  →  MAP(f ; g) ; rest
                if isinstance(node.first, MapOp) and isinstance(inner.first, MapOp):
                    self.report.map_fusions += 1
                    return self._rewrite_node(
                        Compose(MapOp(Compose(node.first.body, inner.first.body)), inner.second)
                    )
                # σ(p) ; (σ(q) ; rest)  →  σ(p && q) ; rest
                if isinstance(node.first, Select) and isinstance(inner.first, Select):
                    self.report.selection_fusions += 1
                    return self._rewrite_node(
                        Compose(
                            Select(Arith("&&", node.first.predicate, inner.first.predicate)),
                            inner.second,
                        )
                    )
            # MAP(f) ; MAP(g)  →  MAP(f ; g)
            if isinstance(node.first, MapOp) and isinstance(node.second, MapOp):
                self.report.map_fusions += 1
                return MapOp(self._rewrite_node(Compose(node.first.body, node.second.body)))
            # σ(p) ; σ(q)  →  σ(p && q)
            if isinstance(node.first, Select) and isinstance(node.second, Select):
                self.report.selection_fusions += 1
                return Select(Arith("&&", node.first.predicate, node.second.predicate))
            # ⟨a: f, ...⟩ ; π_a  →  f
            if isinstance(node.first, TupleCons) and isinstance(node.second, Project):
                if node.second.label in node.first.fields:
                    self.report.dead_tuple_eliminations += 1
                    return node.first.fields[node.second.label]
        return node


def optimize_plan(plan: AlgebraOp) -> OptimizedPlan:
    """Optimize ``plan`` with a fresh :class:`PlanOptimizer`."""
    return PlanOptimizer().optimize(plan)
