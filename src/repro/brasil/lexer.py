"""The BRASIL lexer: source text to a stream of tokens."""

from __future__ import annotations

from repro.brasil.tokens import Token, TokenType
from repro.core.errors import BrasilSyntaxError

_SINGLE_CHAR_TOKENS = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "#": TokenType.HASH,
    "?": TokenType.QUESTION,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
}


class Lexer:
    """Converts BRASIL source text into tokens.

    Supports ``//`` line comments and ``/* ... */`` block comments (including
    Javadoc-style ``/** ... */``), decimal and floating point literals, and
    the two-character operators ``<-``, ``<=``, ``>=``, ``==``, ``!=``,
    ``&&`` and ``||``.
    """

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token list, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self) -> str:
        character = self.source[self.position]
        self.position += 1
        if character == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return character

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            character = self._peek()
            if character in " \t\r\n":
                self._advance()
            elif character == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif character == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.position < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise BrasilSyntaxError("unterminated block comment", self.line, self.column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.source):
            return Token(TokenType.EOF, "", self.line, self.column)

        line, column = self.line, self.column
        character = self._peek()

        if character.isalpha() or character == "_":
            return self._lex_identifier(line, column)
        if character.isdigit():
            return self._lex_number(line, column)

        # Two-character operators (must be checked before single-character ones).
        two = character + self._peek(1)
        two_char_types = {
            "<-": TokenType.EFFECT_ASSIGN,
            "<=": TokenType.LE,
            ">=": TokenType.GE,
            "==": TokenType.EQ,
            "!=": TokenType.NE,
            "&&": TokenType.AND,
            "||": TokenType.OR,
        }
        if two in two_char_types:
            self._advance()
            self._advance()
            return Token(two_char_types[two], two, line, column)

        if character == "<":
            self._advance()
            return Token(TokenType.LT, "<", line, column)
        if character == ">":
            self._advance()
            return Token(TokenType.GT, ">", line, column)
        if character == "=":
            self._advance()
            return Token(TokenType.ASSIGN, "=", line, column)
        if character == "!":
            self._advance()
            return Token(TokenType.NOT, "!", line, column)
        if character in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[character], character, line, column)

        raise BrasilSyntaxError(f"unexpected character {character!r}", line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.position
        while self.position < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.position]
        return Token(TokenType.IDENT, text, line, column, value=text)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        seen_dot = False
        while self.position < len(self.source):
            character = self._peek()
            if character.isdigit():
                self._advance()
            elif character == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            elif character in "eE" and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
                self._advance()
            elif character in "eE" and self._peek(1) in "+-" and self._peek(2).isdigit():
                seen_dot = True
                self._advance()
                self._advance()
                self._advance()
            else:
                break
        text = self.source[start : self.position]
        value = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, text, line, column, value=value)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` (convenience wrapper around :class:`Lexer`)."""
    return Lexer(source).tokenize()
