"""A small monad (nested relational) algebra.

BRASIL compiles to a data-flow representation; following the paper we use
the monad algebra — the theoretical foundation of XQuery — rather than the
flat relational algebra, because its ``MAP`` primitive descends into nested
values, which is a natural companion to MapReduce (Section 4.2, Appendix B).

The data model: scalars, *tuples* (Python dicts from labels to values) and
*collections* (Python lists).  ``None`` plays the role of NIL — the result of
undefined operations — with null semantics: operations on NIL yield NIL and
aggregates ignore NIL elements.

Every operator is a small class with ``evaluate(value)`` (interpret the plan
on a value), ``children()`` (for traversal and rewriting) and a readable
``repr``.  The optimizer (:mod:`repro.brasil.optimizer`) rewrites plans built
from these operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable

from repro.brasil.builtins import BUILTIN_FUNCTIONS
from repro.core.errors import BrasilRuntimeError


class AlgebraOp:
    """Base class for monad algebra operators."""

    def evaluate(self, value: Any) -> Any:
        """Interpret the operator on ``value``."""
        raise NotImplementedError

    def children(self) -> list["AlgebraOp"]:
        """Immediate sub-operators (for traversal and rewriting)."""
        return []

    def replace_children(self, children: list["AlgebraOp"]) -> "AlgebraOp":
        """Return a copy of this operator with new children."""
        return self

    def size(self) -> int:
        """Number of operator nodes in the plan rooted here."""
        return 1 + sum(child.size() for child in self.children())


@dataclass
class Identity(AlgebraOp):
    """ID — returns its input unchanged."""

    def evaluate(self, value):
        return value

    def __repr__(self):
        return "ID"


@dataclass
class Const(AlgebraOp):
    """A constant, ignoring the input."""

    value: Any

    def evaluate(self, value):
        return self.value

    def __repr__(self):
        return f"Const({self.value!r})"


@dataclass
class Compose(AlgebraOp):
    """Left-to-right composition: ``(f ∘ g)(x) = g(f(x))`` as in the paper."""

    first: AlgebraOp
    second: AlgebraOp

    def evaluate(self, value):
        return self.second.evaluate(self.first.evaluate(value))

    def children(self):
        return [self.first, self.second]

    def replace_children(self, children):
        return Compose(children[0], children[1])

    def __repr__(self):
        return f"({self.first!r} ; {self.second!r})"


@dataclass
class TupleCons(AlgebraOp):
    """Tuple construction ``⟨label: op, ...⟩`` — each op applied to the same input."""

    fields: dict[str, AlgebraOp]

    def evaluate(self, value):
        return {label: op.evaluate(value) for label, op in self.fields.items()}

    def children(self):
        return list(self.fields.values())

    def replace_children(self, children):
        return TupleCons(dict(zip(self.fields.keys(), children)))

    def __repr__(self):
        inner = ", ".join(f"{label}: {op!r}" for label, op in self.fields.items())
        return f"⟨{inner}⟩"


@dataclass
class Project(AlgebraOp):
    """Projection ``π_label`` from a tuple; NIL when the label is missing."""

    label: str

    def evaluate(self, value):
        if value is None or not isinstance(value, dict):
            return None
        return value.get(self.label)

    def __repr__(self):
        return f"π_{self.label}"


@dataclass
class MapOp(AlgebraOp):
    """MAP(f): apply ``f`` to every element of a collection."""

    body: AlgebraOp

    def evaluate(self, value):
        if value is None:
            return None
        return [self.body.evaluate(element) for element in value]

    def children(self):
        return [self.body]

    def replace_children(self, children):
        return MapOp(children[0])

    def __repr__(self):
        return f"MAP({self.body!r})"


@dataclass
class FlatMap(AlgebraOp):
    """FLATMAP(f): apply ``f`` (collection-valued) to every element, concatenate."""

    body: AlgebraOp

    def evaluate(self, value):
        if value is None:
            return None
        result = []
        for element in value:
            mapped = self.body.evaluate(element)
            if mapped:
                result.extend(mapped)
        return result

    def children(self):
        return [self.body]

    def replace_children(self, children):
        return FlatMap(children[0])

    def __repr__(self):
        return f"FLATMAP({self.body!r})"


@dataclass
class Sng(AlgebraOp):
    """SNG: wrap the input in a singleton collection."""

    def evaluate(self, value):
        return [value]

    def __repr__(self):
        return "SNG"


@dataclass
class Flatten(AlgebraOp):
    """FLATTEN: collection of collections to a single collection."""

    def evaluate(self, value):
        if value is None:
            return None
        result = []
        for element in value:
            if element:
                result.extend(element)
        return result

    def __repr__(self):
        return "FLATTEN"


@dataclass
class PairWith(AlgebraOp):
    """PAIRWITH_label: unnest the collection stored under ``label``.

    Input: a tuple whose ``label`` component is a collection; output: one
    tuple per element with ``label`` replaced by that element.
    """

    label: str

    def evaluate(self, value):
        if value is None:
            return None
        collection = value.get(self.label) or []
        result = []
        for element in collection:
            paired = dict(value)
            paired[self.label] = element
            result.append(paired)
        return result

    def __repr__(self):
        return f"PAIRWITH_{self.label}"


@dataclass
class Select(AlgebraOp):
    """σ_pred: keep collection elements where the predicate is truthy (NIL drops)."""

    predicate: AlgebraOp

    def evaluate(self, value):
        if value is None:
            return None
        kept = []
        for element in value:
            verdict = self.predicate.evaluate(element)
            if verdict is not None and verdict:
                kept.append(element)
        return kept

    def children(self):
        return [self.predicate]

    def replace_children(self, children):
        return Select(children[0])

    def __repr__(self):
        return f"σ({self.predicate!r})"


@dataclass
class Get(AlgebraOp):
    """GET: the element of a singleton collection, NIL otherwise."""

    def evaluate(self, value):
        if value is None or len(value) != 1:
            return None
        return value[0]

    def __repr__(self):
        return "GET"


@dataclass
class UnionOp(AlgebraOp):
    """Union (bag concatenation) of the results of several operators on the same input."""

    operands: list[AlgebraOp] = dataclass_field(default_factory=list)

    def evaluate(self, value):
        result = []
        for operand in self.operands:
            part = operand.evaluate(value)
            if part:
                result.extend(part)
        return result

    def children(self):
        return list(self.operands)

    def replace_children(self, children):
        return UnionOp(list(children))

    def __repr__(self):
        return " ∪ ".join(repr(op) for op in self.operands) if self.operands else "∅"


@dataclass
class Aggregate(AlgebraOp):
    """SUM/COUNT/MIN/MAX/MEAN over a collection of scalars (NIL elements ignored)."""

    name: str

    def evaluate(self, value):
        if value is None:
            return None
        elements = [element for element in value if element is not None]
        if self.name == "count":
            return len(elements)
        if not elements:
            return None
        if self.name == "sum":
            return sum(elements)
        if self.name == "min":
            return min(elements)
        if self.name == "max":
            return max(elements)
        if self.name == "mean":
            return sum(elements) / len(elements)
        raise BrasilRuntimeError(f"unknown aggregate {self.name!r}")

    def __repr__(self):
        return self.name.upper()


@dataclass
class Arith(AlgebraOp):
    """Scalar arithmetic / comparison on two sub-plans applied to the same input."""

    operator: str
    left: AlgebraOp
    right: AlgebraOp

    def evaluate(self, value):
        left = self.left.evaluate(value)
        right = self.right.evaluate(value)
        if left is None or right is None:
            return None
        operator = self.operator
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            return None if right == 0 else left / right
        if operator == "%":
            return None if right == 0 else left % right
        if operator == "==":
            return left == right
        if operator == "!=":
            return left != right
        if operator == "<":
            return left < right
        if operator == ">":
            return left > right
        if operator == "<=":
            return left <= right
        if operator == ">=":
            return left >= right
        if operator == "&&":
            return bool(left) and bool(right)
        if operator == "||":
            return bool(left) or bool(right)
        raise BrasilRuntimeError(f"unknown operator {operator!r}")

    def children(self):
        return [self.left, self.right]

    def replace_children(self, children):
        return Arith(self.operator, children[0], children[1])

    def __repr__(self):
        return f"({self.left!r} {self.operator} {self.right!r})"


@dataclass
class Negate(AlgebraOp):
    """Unary minus / logical not on a sub-plan."""

    operator: str
    operand: AlgebraOp

    def evaluate(self, value):
        operand = self.operand.evaluate(value)
        if operand is None:
            return None
        if self.operator == "-":
            return -operand
        if self.operator == "!":
            return not operand
        raise BrasilRuntimeError(f"unknown unary operator {self.operator!r}")

    def children(self):
        return [self.operand]

    def replace_children(self, children):
        return Negate(self.operator, children[0])

    def __repr__(self):
        return f"{self.operator}{self.operand!r}"


@dataclass
class Apply(AlgebraOp):
    """A builtin scalar function applied to sub-plan results."""

    function: str
    arguments: list[AlgebraOp]

    def evaluate(self, value):
        function = BUILTIN_FUNCTIONS.get(self.function)
        if function is None:
            raise BrasilRuntimeError(f"unknown builtin {self.function!r}")
        arguments = [argument.evaluate(value) for argument in self.arguments]
        if any(argument is None for argument in arguments):
            return None
        try:
            return function(*arguments)
        except (ValueError, OverflowError):
            return None

    def children(self):
        return list(self.arguments)

    def replace_children(self, children):
        return Apply(self.function, list(children))

    def __repr__(self):
        inner = ", ".join(repr(argument) for argument in self.arguments)
        return f"{self.function}({inner})"


@dataclass
class Cond(AlgebraOp):
    """Conditional: evaluate then/else depending on the condition (NIL → NIL)."""

    condition: AlgebraOp
    then_op: AlgebraOp
    else_op: AlgebraOp

    def evaluate(self, value):
        verdict = self.condition.evaluate(value)
        if verdict is None:
            return None
        return self.then_op.evaluate(value) if verdict else self.else_op.evaluate(value)

    def children(self):
        return [self.condition, self.then_op, self.else_op]

    def replace_children(self, children):
        return Cond(children[0], children[1], children[2])

    def __repr__(self):
        return f"IF({self.condition!r}, {self.then_op!r}, {self.else_op!r})"


@dataclass
class NotNil(AlgebraOp):
    """True when the sub-plan's result is not NIL (used to drop NIL effects)."""

    operand: AlgebraOp

    def evaluate(self, value):
        return self.operand.evaluate(value) is not None

    def children(self):
        return [self.operand]

    def replace_children(self, children):
        return NotNil(children[0])

    def __repr__(self):
        return f"NOTNIL({self.operand!r})"


def cartesian_product(left_label: str, right_label: str) -> AlgebraOp:
    """The derived cartesian product of equation (1) of Appendix B.

    Input: a tuple with collections under ``left_label`` and ``right_label``;
    output: the collection of tuples pairing every element of the first with
    every element of the second (other tuple components are carried along).
    """
    return Compose(PairWith(left_label), FlatMap(Compose(PairWith(right_label), Identity())))
