"""Columnar plan kernels: whole-phase batched execution of BRASIL plans.

The interpreted runtime (:mod:`repro.brasil.interpreter`) evaluates each
agent's ``run()`` body and update rules one agent — one *pair*, inside a
``foreach`` — at a time.  This module compiles whole query and update
plans to NumPy so a phase becomes a handful of array operations: effect
aggregation turns into ``np.ufunc.at`` scatter-reductions over the spatial
join's match lists, and update rules turn into column arithmetic over a
:class:`~repro.core.soa.AgentTable` structure-of-arrays snapshot.

Bit-identity with the interpreter is the contract, never tolerance, so the
compiler only accepts constructs it can prove equivalent:

* NIL semantics are carried as an explicit validity mask per lane —
  division by zero, ``sqrt`` of a negative number and friends invalidate
  the lane exactly where the interpreter would have produced ``None``;
* ``min``/``max`` builtins use Python's comparison-based semantics
  (``where(b < a, b, a)``), not ``np.minimum``'s NaN propagation;
* transcendental builtins (``exp``, ``sin``, ``pow``, …) and the ``%``
  operator are evaluated lane-by-lane through the *same* Python functions
  the interpreter calls, because their NumPy counterparts are not
  guaranteed bit-identical;
* scatter order replicates the interpreter's fold order: pairs are laid
  out probe-major / match-ascending, and ``ufunc.at`` applies duplicates
  element by element in that order.  Fields whose combinator fold is
  order-sensitive (``sum``, ``product``, ``mean``) are only compiled when
  a single statement writes them (or all writers are per-probe local
  assignments), so the per-target combine order provably matches;
* a ``min``/``max`` scatter that would combine a NaN raises
  :class:`PlanKernelFallback` *before* any agent is mutated — NumPy's
  ``minimum.at`` and Python's ``min`` disagree on NaN ordering.

Anything outside the provable subset — ``rand()`` in the phase, nested
``foreach``, loop-carried local accumulators, agent-valued locals, the
``collect`` combinator, unbounded visibility — simply leaves the phase on
the interpreted path.  Fallback is per worker-phase and all-or-nothing:
kernels do all their reading and computing first and only then write
effects/state back, so a fallback mid-compute leaves the world untouched
for the interpreter to process from scratch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.brasil.ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    BoolLit,
    Call,
    ClassDecl,
    Conditional,
    EffectAssign,
    ExprStmt,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    Name,
    NumberLit,
    UnaryOp,
)
from repro.brasil.builtins import BUILTIN_FUNCTIONS
from repro.brasil.semantics import ScriptInfo
from repro.core.soa import AgentTable, UnpackableValueError, pack_column


class PlanKernelFallback(Exception):
    """A compiled kernel handed the phase back to the interpreter.

    Raised only before any agent state or effect has been mutated, so the
    caller can rerun the whole phase interpreted.
    """


class _Unsupported(Exception):
    """Compile-time marker: a construct is outside the provable subset."""


#: Arithmetic operators computed directly on ``float64`` columns (IEEE-exact).
_ARITH_OPS = ("+", "-", "*")
_COMPARE_OPS = ("==", "!=", "<", ">", "<=", ">=")

#: Builtins with exact vector equivalents (comparison/rounding based).
_VECTOR_CALLS = {"abs", "min", "max", "sqrt", "floor", "ceil", "sign"}
#: Builtins evaluated lane-by-lane through the interpreter's own functions.
_LANE_CALLS = {"exp", "log", "pow", "sin", "cos", "tan", "atan2", "hypot"}
_SUPPORTED_CALLS = _VECTOR_CALLS | _LANE_CALLS

#: Combinators whose fold is exactly order-insensitive: integer addition,
#: boolean or/and, and (NaN-guarded) min/max.  Float ``sum``/``product``/
#: ``mean`` folds are order-sensitive and get the single-writer restriction.
_ORDER_INSENSITIVE = {"count", "min", "max", "any", "all"}
_SCATTERABLE = {"sum", "count", "min", "max", "product", "any", "all", "mean"}

#: Sentinel for locals whose vector value is no longer representable (a
#: ``foreach``-scoped declaration read after the loop).  Reads raise.
_POISON = object()


def _exact_number(literal: NumberLit) -> None:
    """Reject integer literals a float64 cannot represent exactly."""
    value = literal.value
    if type(value) is int:
        try:
            exact = int(float(value)) == value
        except OverflowError:
            exact = False
        if not exact:
            raise _Unsupported(f"integer literal {value!r} not exact in float64")


def _call_arity_ok(function: str, arity: int) -> bool:
    """Arities the compiled path supports (mirrors what cannot crash)."""
    if function in ("min", "max"):
        return arity >= 2
    if function in ("pow", "atan2"):
        return arity == 2
    if function == "hypot":
        return arity >= 1
    return arity == 1


class _ExprChecker:
    """Static validation of one expression against the compilable subset."""

    def __init__(self, value_names, agent_names, state_fields, poisoned=()):
        self.value_names = value_names
        self.agent_names = agent_names
        self.state_fields = state_fields
        self.poisoned = poisoned

    def check(self, expr) -> None:
        if isinstance(expr, NumberLit):
            _exact_number(expr)
            return
        if isinstance(expr, BoolLit):
            return
        if isinstance(expr, Name):
            name = expr.identifier
            if name == "this" or name in self.agent_names:
                raise _Unsupported(f"agent-valued name {name!r} used as a value")
            if name in self.poisoned:
                raise _Unsupported(f"loop-scoped local {name!r} read after foreach")
            if name not in self.value_names and name not in self.state_fields:
                raise _Unsupported(f"unresolvable name {name!r}")
            return
        if isinstance(expr, FieldAccess):
            target = expr.target
            if not isinstance(target, Name):
                raise _Unsupported("computed field-access target")
            if target.identifier != "this" and target.identifier not in self.agent_names:
                raise _Unsupported(f"field access on non-agent {target.identifier!r}")
            if expr.field_name not in self.state_fields:
                raise _Unsupported(f"access to non-state field {expr.field_name!r}")
            return
        if isinstance(expr, BinaryOp):
            if expr.operator not in _ARITH_OPS + _COMPARE_OPS + ("/", "%", "&&", "||"):
                raise _Unsupported(f"operator {expr.operator!r}")
            self.check(expr.left)
            self.check(expr.right)
            return
        if isinstance(expr, UnaryOp):
            if expr.operator not in ("-", "!"):
                raise _Unsupported(f"unary operator {expr.operator!r}")
            self.check(expr.operand)
            return
        if isinstance(expr, Conditional):
            self.check(expr.condition)
            self.check(expr.then_expr)
            self.check(expr.else_expr)
            return
        if isinstance(expr, Call):
            if expr.function not in _SUPPORTED_CALLS:
                raise _Unsupported(f"call to {expr.function!r}")
            if not _call_arity_ok(expr.function, len(expr.arguments)):
                raise _Unsupported(f"unsupported arity for {expr.function!r}")
            for argument in expr.arguments:
                self.check(argument)
            return
        raise _Unsupported(f"expression node {type(expr).__name__}")


def _validate_query_body(body: Block, info: ScriptInfo) -> None:
    """Prove the whole ``run()`` body compilable, or raise ``_Unsupported``.

    Mirrors the executor's structure: simulates local declarations in
    statement order, tracks which effect fields are written where, and
    enforces the per-field fold-order restrictions.
    """
    state_fields = set(info.state_field_names)
    combinators = dict(info.effect_combinators)
    probe_locals: set = set()
    poisoned: set = set()
    # field -> list of (depth, target_kind) with target_kind in {"this", "loopvar"}
    writers: Dict[str, List[Tuple[int, str]]] = {}

    def walk(statements, depth, in_if, loopvar, loop_locals):
        for stmt in statements:
            if isinstance(stmt, Block):
                walk(stmt.statements, depth, in_if, loopvar, loop_locals)
            elif isinstance(stmt, LocalDecl):
                if in_if:
                    raise _Unsupported("local declaration inside if")
                if stmt.name == "this":
                    raise _Unsupported("local named 'this'")
                checker(depth, loopvar, loop_locals).check(stmt.initializer)
                if depth == 0:
                    probe_locals.add(stmt.name)
                else:
                    loop_locals.add(stmt.name)
                poisoned.discard(stmt.name)
            elif isinstance(stmt, Assign):
                if depth > 0:
                    raise _Unsupported("assignment inside foreach (loop-carried)")
                if stmt.name not in probe_locals or stmt.name in poisoned:
                    raise _Unsupported(f"assignment to {stmt.name!r}")
                checker(depth, loopvar, loop_locals).check(stmt.value)
            elif isinstance(stmt, EffectAssign):
                kind = _target_kind(stmt, loopvar)
                combinator = combinators.get(stmt.field_name)
                if combinator is None:
                    raise _Unsupported(f"unknown effect field {stmt.field_name!r}")
                if combinator not in _SCATTERABLE:
                    raise _Unsupported(f"combinator {combinator!r} not scatterable")
                checker(depth, loopvar, loop_locals).check(stmt.value)
                writers.setdefault(stmt.field_name, []).append((depth, kind))
            elif isinstance(stmt, If):
                checker(depth, loopvar, loop_locals).check(stmt.condition)
                walk(stmt.then_block.statements, depth, True, loopvar, loop_locals)
                if stmt.else_block is not None:
                    walk(stmt.else_block.statements, depth, True, loopvar, loop_locals)
            elif isinstance(stmt, ForEach):
                if depth > 0:
                    raise _Unsupported("nested foreach")
                if in_if:
                    # Work accounting per probe would need per-lane extent
                    # resolution under a mask — supported by the executor,
                    # but extent charging depends on has_bounded_visibility
                    # per agent, which matches the class here; allow it.
                    pass
                if stmt.element_type != info.class_name:
                    raise _Unsupported(f"foreach over foreign type {stmt.element_type!r}")
                inner: set = set()
                walk(stmt.body.statements, 1, False, stmt.variable, inner)
                poisoned.update(inner)
            elif isinstance(stmt, ExprStmt):
                checker(depth, loopvar, loop_locals).check(stmt.expression)
            else:
                raise _Unsupported(f"statement node {type(stmt).__name__}")

    def checker(depth, loopvar, loop_locals):
        value_names = set(probe_locals) | (loop_locals if depth else set())
        agent_names = {"this"} | ({loopvar} if loopvar else set())
        # A loop variable shadows any probe-level local of the same name.
        value_names -= agent_names
        return _ExprChecker(value_names, agent_names, state_fields, poisoned)

    walk(body.statements, 0, False, None, set())

    for field, field_writers in writers.items():
        if combinators[field] in _ORDER_INSENSITIVE:
            continue
        if len(field_writers) == 1:
            continue
        if all(depth == 0 for depth, _ in field_writers):
            continue  # each target combined only by its own probe, in order
        raise _Unsupported(
            f"order-sensitive effect {field!r} written by multiple statements"
        )


def _target_kind(stmt: EffectAssign, loopvar: Optional[str]) -> str:
    """Classify an effect target as ``this`` or the loop variable."""
    target = stmt.target_agent
    if target is None:
        return "this"
    if isinstance(target, Name):
        if target.identifier == "this":
            return "this"
        if loopvar is not None and target.identifier == loopvar:
            return "loopvar"
    raise _Unsupported("effect target is neither 'this' nor the loop variable")


class QueryKernel:
    """A compiled query phase: one worker's ``run()`` bodies as array ops."""

    def __init__(self, class_name: str, body: Block, info: ScriptInfo):
        self.class_name = class_name
        self.body = body
        self.state_field_names = list(info.state_field_names)
        self.effect_combinators = dict(info.effect_combinators)

    def run(self, owned: Sequence[Any], context: Any) -> None:
        """Execute the query phase for ``owned`` probes against ``context``.

        Raises :class:`PlanKernelFallback` (before any mutation) when a
        runtime-only condition blocks the compiled path.
        """
        frame = _VectorFrame.for_query(self, owned, context)
        mask = np.ones(len(owned), dtype=bool)
        frame.exec_block(self.body.statements, mask, "probe")
        frame.writeback_effects()


class UpdateKernel:
    """A compiled update phase for one agent class: rules as column math."""

    def __init__(self, class_name: str, rules, info: ScriptInfo):
        self.class_name = class_name
        #: ``(field_name, expression)`` in declaration order — the same
        #: order the interpreted path applies ``setattr`` in.
        self.rules = list(rules)
        self.state_field_names = list(info.state_field_names)
        self.effect_reads = {
            name
            for _, expr in self.rules
            for name in _names_in(expr)
            if name in info.effect_combinators
        }

    def run(self, agents: Sequence[Any], context: Any) -> None:
        """Apply every update rule to ``agents`` (all of this class)."""
        if not agents:
            return
        cls = type(agents[0])
        table = AgentTable(agents, self.state_field_names)
        effect_columns = {}
        for name in self.effect_reads:
            combinator = cls._effect_fields[name].combinator
            effect_columns[name] = pack_column(
                [combinator.finalize(agent._effects[name]) for agent in agents]
            )
        frame = _VectorFrame.for_update(table, effect_columns, self.state_field_names)
        computed = [(field, frame.eval(expr, "probe")) for field, expr in self.rules]
        # All reads and computation are done; from here on, writeback only.
        for field, (values, valid) in computed:
            old = table.column(field)
            new = np.asarray(values, dtype=np.float64)
            descriptor = cls._state_fields[field]
            reach = descriptor.reachability if descriptor.spatial else None
            if reach is not None:
                # Python-semantics clamp: min(max(value, lo), hi) — NaN
                # passes through both comparisons, unlike np.clip.
                low = old - reach
                high = old + reach
                stepped = np.where(low > new, low, new)
                new = np.where(high < stepped, high, stepped)
            table.set_column(field, np.where(valid, new, old))
        table.writeback()


def _names_in(expr) -> List[str]:
    """Every bare identifier referenced by ``expr``."""
    found: List[str] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Name):
            found.append(node.identifier)
        elif isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, Conditional):
            stack.extend((node.condition, node.then_expr, node.else_expr))
        elif isinstance(node, Call):
            stack.extend(node.arguments)
        elif isinstance(node, FieldAccess):
            stack.append(node.target)
    return found


class _Accumulator:
    """One effect field's scatter target, initialized from live effects."""

    def __init__(self, field: str, combinator_name: str, raw_values: list):
        self.field = field
        self.combinator = combinator_name
        n = len(raw_values)
        self.touch = np.zeros(n, dtype=np.int64)
        if combinator_name == "count":
            if any(type(value) is not int for value in raw_values):
                raise PlanKernelFallback(f"count accumulator for {field!r} not int")
            self.data = np.array(raw_values, dtype=np.int64)
        elif combinator_name in ("any", "all"):
            if any(type(value) is not bool for value in raw_values):
                raise PlanKernelFallback(f"bool accumulator for {field!r} not bool")
            self.data = np.array(raw_values, dtype=bool)
        elif combinator_name == "mean":
            try:
                self.sums = pack_column([value[0] for value in raw_values])
                counts = [value[1] for value in raw_values]
            except (TypeError, IndexError, UnpackableValueError) as exc:
                raise PlanKernelFallback(str(exc)) from exc
            if any(type(count) is not int for count in counts):
                raise PlanKernelFallback(f"mean counts for {field!r} not int")
            self.counts = np.array(counts, dtype=np.int64)
        else:  # sum, min, max, product
            try:
                self.data = pack_column(raw_values)
            except UnpackableValueError as exc:
                raise PlanKernelFallback(str(exc)) from exc

    def scatter(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Combine ``values`` into the accumulator at ``rows``, in order."""
        name = self.combinator
        if name in ("min", "max") and bool(np.isnan(values).any()):
            # Python's min/max keep the accumulator when the candidate is
            # NaN; np.minimum.at would propagate it.  Bail out before any
            # agent has been touched.
            raise PlanKernelFallback(f"NaN combined into {name} effect {self.field!r}")
        if name == "sum":
            np.add.at(self.data, rows, values)
        elif name == "count":
            np.add.at(self.data, rows, 1)
        elif name == "min":
            np.minimum.at(self.data, rows, values)
        elif name == "max":
            np.maximum.at(self.data, rows, values)
        elif name == "product":
            np.multiply.at(self.data, rows, values)
        elif name == "any":
            np.logical_or.at(self.data, rows, values != 0.0)
        elif name == "all":
            np.logical_and.at(self.data, rows, values != 0.0)
        elif name == "mean":
            np.add.at(self.sums, rows, values)
            np.add.at(self.counts, rows, 1)
        np.add.at(self.touch, rows, 1)

    def writeback(self, agents: Sequence[Any]) -> None:
        """Store combined accumulators into the touched agents' effects."""
        for row in np.nonzero(self.touch)[0]:
            agent = agents[int(row)]
            name = self.combinator
            if name == "count":
                value: Any = int(self.data[row])
            elif name in ("any", "all"):
                value = bool(self.data[row])
            elif name == "mean":
                value = (float(self.sums[row]), int(self.counts[row]))
            else:
                value = float(self.data[row])
            agent._effects[self.field] = value
            agent._effects_touched.add(self.field)


class _VectorFrame:
    """Runtime state for one kernel execution: columns, locals, pair lists."""

    def __init__(self, table: AgentTable, probe_rows: np.ndarray):
        self.table = table
        self.probe_rows = probe_rows
        self.locals: Dict[str, Any] = {}
        self.effect_columns: Dict[str, np.ndarray] = {}
        self.state_fields: set = set()
        self.context = None
        self.kernel: Optional[QueryKernel] = None
        self.probes: List[Any] = []
        self.accumulators: Dict[str, _Accumulator] = {}
        self.pair_probe: Optional[np.ndarray] = None
        self.pair_rows: Optional[np.ndarray] = None
        self.loopvar: Optional[str] = None
        self._probe_cache: Dict[str, np.ndarray] = {}
        self._pair_cache: Dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def for_query(cls, kernel: QueryKernel, owned: Sequence[Any], context: Any):
        canonical = context._canonical_agents()
        extent = [a for a in canonical if type(a).__name__ == kernel.class_name]
        try:
            table = AgentTable(extent, kernel.state_field_names)
        except UnpackableValueError as exc:
            raise PlanKernelFallback(str(exc)) from exc
        try:
            probe_rows = np.array(
                [table.row_of(agent) for agent in owned], dtype=np.intp
            )
        except KeyError as exc:
            raise PlanKernelFallback("probe not in extent") from exc
        frame = cls(table, probe_rows)
        frame.kernel = kernel
        frame.context = context
        frame.probes = list(owned)
        frame.state_fields = set(kernel.state_field_names)
        frame.accumulators = {
            field: _Accumulator(
                field, combinator, [agent._effects[field] for agent in extent]
            )
            for field, combinator in kernel.effect_combinators.items()
        }
        return frame

    @classmethod
    def for_update(cls, table: AgentTable, effect_columns, state_field_names):
        frame = cls(table, np.arange(len(table), dtype=np.intp))
        frame.effect_columns = effect_columns
        frame.state_fields = set(state_field_names)
        return frame

    # -- spaces --------------------------------------------------------
    def _length(self, space: str) -> int:
        if space == "probe":
            return len(self.probe_rows)
        return len(self.pair_rows)

    def _promote(self, pair, space_from: str, space_to: str):
        if space_from == space_to:
            return pair
        if space_from == "probe" and space_to == "pair":
            values, valid = pair
            return values[self.pair_probe], valid[self.pair_probe]
        raise PlanKernelFallback("pair-space value escaping its foreach")

    def _state_column(self, name: str, space: str, of_match: bool):
        if of_match:
            key = name
            cached = self._pair_cache.get(key)
            if cached is None:
                cached = self.table.column(name)[self.pair_rows]
                self._pair_cache[key] = cached
            return cached
        cached = self._probe_cache.get(name)
        if cached is None:
            cached = self.table.column(name)[self.probe_rows]
            self._probe_cache[name] = cached
        if space == "pair":
            return cached[self.pair_probe]
        return cached

    # -- expression evaluation -----------------------------------------
    def eval(self, expr, space: str):
        """Evaluate ``expr`` to ``(values, valid)`` float64/bool arrays."""
        n = self._length(space)
        if isinstance(expr, NumberLit):
            return (
                np.full(n, float(expr.value), dtype=np.float64),
                np.ones(n, dtype=bool),
            )
        if isinstance(expr, BoolLit):
            return (
                np.full(n, 1.0 if expr.value else 0.0, dtype=np.float64),
                np.ones(n, dtype=bool),
            )
        if isinstance(expr, Name):
            return self._eval_name(expr.identifier, space, n)
        if isinstance(expr, FieldAccess):
            of_match = expr.target.identifier != "this"
            values = self._state_column(expr.field_name, space, of_match)
            return values, np.ones(n, dtype=bool)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, space, n)
        if isinstance(expr, UnaryOp):
            values, valid = self.eval(expr.operand, space)
            if expr.operator == "-":
                return -values, valid
            return np.where(values != 0.0, 0.0, 1.0), valid
        if isinstance(expr, Conditional):
            cond, cond_valid = self.eval(expr.condition, space)
            then_v, then_valid = self.eval(expr.then_expr, space)
            else_v, else_valid = self.eval(expr.else_expr, space)
            truthy = cond != 0.0
            return (
                np.where(truthy, then_v, else_v),
                cond_valid & np.where(truthy, then_valid, else_valid),
            )
        if isinstance(expr, Call):
            return self._eval_call(expr, space, n)
        raise PlanKernelFallback(f"cannot evaluate {type(expr).__name__}")

    def _eval_name(self, name: str, space: str, n: int):
        entry = self.locals.get(name)
        if entry is _POISON:
            raise PlanKernelFallback(f"read of loop-scoped local {name!r}")
        if entry is not None:
            values, valid, stored_space = entry
            return self._promote((values, valid), stored_space, space)
        if name in self.state_fields:
            return self._state_column(name, space, of_match=False), np.ones(n, dtype=bool)
        column = self.effect_columns.get(name)
        if column is not None:
            return column, np.ones(n, dtype=bool)
        raise PlanKernelFallback(f"unresolvable name {name!r}")

    def _eval_binary(self, expr: BinaryOp, space: str, n: int):
        operator = expr.operator
        left, left_valid = self.eval(expr.left, space)
        right, right_valid = self.eval(expr.right, space)
        with np.errstate(all="ignore"):
            if operator == "+":
                return left + right, left_valid & right_valid
            if operator == "-":
                return left - right, left_valid & right_valid
            if operator == "*":
                return left * right, left_valid & right_valid
            if operator == "/":
                valid = left_valid & right_valid & (right != 0.0)
                values = left / np.where(right == 0.0, 1.0, right)
                return values, valid
            if operator == "%":
                # CPython's float modulo (fmod + sign correction) is the
                # reference; evaluate it lane by lane to stay exact.
                valid = left_valid & right_valid & (right != 0.0)
                values = np.zeros(n, dtype=np.float64)
                for lane in np.nonzero(valid)[0]:
                    values[lane] = float(left[lane]) % float(right[lane])
                return values, valid
            if operator == "&&":
                left_truthy = left != 0.0
                values = np.where(left_truthy, (right != 0.0).astype(np.float64), 0.0)
                valid = left_valid & (~left_truthy | right_valid)
                return values, valid
            if operator == "||":
                left_truthy = left != 0.0
                values = np.where(left_truthy, 1.0, (right != 0.0).astype(np.float64))
                valid = left_valid & (left_truthy | right_valid)
                return values, valid
            comparison = {
                "==": np.equal,
                "!=": np.not_equal,
                "<": np.less,
                ">": np.greater,
                "<=": np.less_equal,
                ">=": np.greater_equal,
            }.get(operator)
            if comparison is None:
                raise PlanKernelFallback(f"operator {operator!r}")
            return (
                comparison(left, right).astype(np.float64),
                left_valid & right_valid,
            )

    def _eval_call(self, expr: Call, space: str, n: int):
        evaluated = [self.eval(argument, space) for argument in expr.arguments]
        values = [pair[0] for pair in evaluated]
        valid = np.ones(n, dtype=bool)
        for pair in evaluated:
            valid = valid & pair[1]
        function = expr.function
        with np.errstate(all="ignore"):
            if function == "abs":
                return np.abs(values[0]), valid
            if function in ("min", "max"):
                # Python fold semantics: candidate replaces the running
                # value only on a strict comparison win (NaN never wins).
                accumulator = values[0]
                for candidate in values[1:]:
                    if function == "min":
                        accumulator = np.where(
                            candidate < accumulator, candidate, accumulator
                        )
                    else:
                        accumulator = np.where(
                            candidate > accumulator, candidate, accumulator
                        )
                return accumulator, valid
            if function == "sqrt":
                argument = values[0]
                negative = argument < 0.0
                return np.sqrt(np.where(negative, 0.0, argument)), valid & ~negative
            if function in ("floor", "ceil"):
                argument = values[0]
                finite = np.isfinite(argument)
                rounded = (np.floor if function == "floor" else np.ceil)(
                    np.where(finite, argument, 0.0)
                )
                return rounded, valid & finite
            if function == "sign":
                argument = values[0]
                return (
                    np.where(argument > 0.0, 1.0, np.where(argument < 0.0, -1.0, 0.0)),
                    valid,
                )
            if function in _LANE_CALLS:
                reference = BUILTIN_FUNCTIONS[function]
                out = np.zeros(n, dtype=np.float64)
                ok = valid.copy()
                for lane in np.nonzero(valid)[0]:
                    try:
                        out[lane] = reference(
                            *(float(column[lane]) for column in values)
                        )
                    except (ValueError, OverflowError):
                        ok[lane] = False
                return out, ok
        raise PlanKernelFallback(f"call to {function!r}")

    # -- statement execution -------------------------------------------
    def exec_block(self, statements, mask: np.ndarray, space: str) -> None:
        for statement in statements:
            self.exec_statement(statement, mask, space)

    def exec_statement(self, statement, mask: np.ndarray, space: str) -> None:
        if isinstance(statement, Block):
            self.exec_block(statement.statements, mask, space)
        elif isinstance(statement, LocalDecl):
            values, valid = self.eval(statement.initializer, space)
            self.locals[statement.name] = (values, valid, space)
        elif isinstance(statement, Assign):
            new_values, new_valid = self.eval(statement.value, space)
            entry = self.locals.get(statement.name)
            if entry is None or entry is _POISON:
                raise PlanKernelFallback(f"assignment to {statement.name!r}")
            old_values, old_valid, stored_space = entry
            self.locals[statement.name] = (
                np.where(mask, new_values, old_values),
                np.where(mask, new_valid, old_valid),
                space,
            )
        elif isinstance(statement, EffectAssign):
            values, valid = self.eval(statement.value, space)
            lanes = mask & valid
            if _target_kind(statement, self.loopvar) == "loopvar":
                rows = self.pair_rows
            elif space == "pair":
                rows = self.probe_rows[self.pair_probe]
            else:
                rows = self.probe_rows
            accumulator = self.accumulators[statement.field_name]
            accumulator.scatter(rows[lanes], values[lanes])
        elif isinstance(statement, If):
            cond, cond_valid = self.eval(statement.condition, space)
            taken = cond_valid & (cond != 0.0)
            self.exec_block(statement.then_block.statements, mask & taken, space)
            if statement.else_block is not None:
                self.exec_block(statement.else_block.statements, mask & ~taken, space)
        elif isinstance(statement, ForEach):
            self._exec_foreach(statement, mask)
        elif isinstance(statement, ExprStmt):
            pass  # provably pure: no effects, no work accounting, no rand
        else:
            raise PlanKernelFallback(f"statement {type(statement).__name__}")

    def _exec_foreach(self, statement: ForEach, mask: np.ndarray) -> None:
        # Resolve the extent per active probe through the same public
        # context API the interpreter uses: identical matches, identical
        # work accounting, canonical (ascending) match order.
        pair_probe: List[int] = []
        pair_rows: List[int] = []
        row_of = self.table.row_of
        class_name = self.kernel.class_name
        for index in np.nonzero(mask)[0]:
            agent = self.probes[int(index)]
            for match in self.context.visible(agent):
                if type(match).__name__ == class_name:
                    pair_probe.append(int(index))
                    pair_rows.append(row_of(match))
        saved_locals = dict(self.locals)
        self.pair_probe = np.array(pair_probe, dtype=np.intp)
        self.pair_rows = np.array(pair_rows, dtype=np.intp)
        self.loopvar = statement.variable
        self._pair_cache = {}
        pair_mask = np.ones(len(pair_rows), dtype=bool)
        self.exec_block(statement.body.statements, pair_mask, "pair")
        # Locals declared (or re-declared) inside the loop held the last
        # iteration's scalar in the interpreter; no single vector
        # represents that, so reads after the loop fall back.
        restored: Dict[str, Any] = {}
        for name, entry in self.locals.items():
            if entry is _POISON or entry[2] == "pair":
                previous = saved_locals.get(name, _POISON)
                if previous is _POISON or previous[2] == "pair":
                    restored[name] = _POISON
                else:
                    restored[name] = previous
            else:
                restored[name] = entry
        self.locals = restored
        self.pair_probe = None
        self.pair_rows = None
        self.loopvar = None
        self._pair_cache = {}

    # -- writeback ------------------------------------------------------
    def writeback_effects(self) -> None:
        """Flush accumulators into the extent agents' effect dicts."""
        agents = self.table.agents
        for field in self.kernel.effect_combinators:
            self.accumulators[field].writeback(agents)


# ----------------------------------------------------------------------
# Kernel construction and caching
# ----------------------------------------------------------------------
def build_query_kernel(
    class_decl: ClassDecl, info: ScriptInfo, restrict_to_visible: bool = True
) -> Optional[QueryKernel]:
    """Compile the class's ``run()`` body, or ``None`` if unprovable."""
    run_method = class_decl.run_method()
    if run_method is None or not info.has_run_method:
        return None
    if info.uses_rand_in_query:
        return None
    body = run_method.body
    uses_foreach = any(isinstance(stmt, ForEach) for stmt in _all_statements(body))
    if uses_foreach and not (info.has_bounded_visibility and restrict_to_visible):
        return None
    try:
        _validate_query_body(body, info)
    except _Unsupported:
        return None
    return QueryKernel(info.class_name, body, info)


def build_update_kernel(class_decl: ClassDecl, info: ScriptInfo) -> Optional[UpdateKernel]:
    """Compile the class's update rules, or ``None`` if unprovable."""
    if info.uses_rand_in_update:
        return None
    rules = []
    readable = {
        name
        for name, combinator in info.effect_combinators.items()
        if combinator != "collect"
    }
    checker = _ExprChecker(
        value_names=set(info.state_field_names) | readable,
        agent_names=set(),
        state_fields=set(),
    )
    for field_decl in class_decl.state_fields():
        if field_decl.update_rule is None:
            continue
        try:
            checker.check(field_decl.update_rule)
        except _Unsupported:
            return None
        rules.append((field_decl.name, field_decl.update_rule))
    if not rules:
        return None
    return UpdateKernel(info.class_name, rules, info)


def _all_statements(block: Block):
    stack = list(block.statements)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, Block):
            stack.extend(stmt.statements)
        elif isinstance(stmt, If):
            stack.extend(stmt.then_block.statements)
            if stmt.else_block is not None:
                stack.extend(stmt.else_block.statements)
        elif isinstance(stmt, ForEach):
            stack.extend(stmt.body.statements)


def kernels_for_class(cls) -> Tuple[Optional[QueryKernel], Optional[UpdateKernel]]:
    """The class's (query, update) kernels, compiled once and cached.

    Non-BRASIL classes (no ``_class_decl``) get ``(None, None)``: the
    interpreted path is the only semantics for hand-written agents.  The
    cache lives on the class object itself, so worker processes that
    rebuild compiled classes from :class:`AgentClassSpec` recompile
    lazily on first use.
    """
    cached = cls.__dict__.get("_plan_kernels")
    if cached is not None:
        return cached
    class_decl = getattr(cls, "_class_decl", None)
    info = getattr(cls, "_script_info", None)
    if class_decl is None or info is None:
        kernels: Tuple[Optional[QueryKernel], Optional[UpdateKernel]] = (None, None)
    else:
        restrict = getattr(cls, "_restrict_to_visible", True)
        kernels = (
            build_query_kernel(class_decl, info, restrict),
            build_update_kernel(class_decl, info),
        )
    cls._plan_kernels = kernels
    return kernels


def resolve_plan_backend(plan_backend: Optional[str], agent_classes) -> str:
    """The backend a run with this knob actually attempts.

    Mirrors :func:`repro.core.context.resolve_spatial_backend` for the
    provenance record: an explicit knob wins; ``None`` (automatic) means
    "compiled wherever a kernel exists", which resolves to ``compiled``
    when at least one class compiled and ``interpreted`` otherwise.
    """
    if plan_backend in ("interpreted", "compiled"):
        return plan_backend
    classes = list(agent_classes)
    if classes and any(kernels_for_class(cls) != (None, None) for cls in classes):
        return "compiled"
    return "interpreted"


# ----------------------------------------------------------------------
# Phase-level entry points (called by the worker layer)
# ----------------------------------------------------------------------
def try_compiled_query_phase(owned: Sequence[Any], context: Any) -> bool:
    """Run the whole query phase compiled; ``False`` means "not executed".

    All-or-nothing per worker: every owned agent must share one compiled
    class, otherwise the caller's interpreted loop runs instead.  On a
    runtime fallback the context's work accounting is restored so the
    interpreted rerun charges exactly once.
    """
    if not owned:
        return False
    cls = type(owned[0])
    if any(type(agent) is not cls for agent in owned):
        return False
    kernel = kernels_for_class(cls)[0]
    if kernel is None:
        return False
    saved_work = (context.work_units, context.index_probes)
    try:
        kernel.run(owned, context)
        return True
    except PlanKernelFallback:
        context.work_units, context.index_probes = saved_work
        return False


def try_compiled_update_phase(owned: Sequence[Any], context: Any) -> List[Any]:
    """Run compiled update kernels; return the agents still needing the
    interpreted loop, in their original (canonical) order."""
    interpreted_classes = set()
    groups: Dict[type, List[Any]] = {}
    for agent in owned:
        groups.setdefault(type(agent), []).append(agent)
    for cls, agents in groups.items():
        kernel = kernels_for_class(cls)[1]
        if kernel is None:
            interpreted_classes.add(cls)
            continue
        try:
            kernel.run(agents, context)
        except PlanKernelFallback:
            interpreted_classes.add(cls)
    if not interpreted_classes:
        return []
    return [agent for agent in owned if type(agent) in interpreted_classes]
