"""Token definitions for the BRASIL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """Every kind of lexical token BRASIL recognises."""

    IDENT = "ident"
    NUMBER = "number"
    # Punctuation
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    HASH = "#"
    QUESTION = "?"
    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    EFFECT_ASSIGN = "<-"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    NOT = "!"
    # End of input
    EOF = "eof"


#: Reserved words.  They lex as IDENT tokens but the parser treats them
#: specially; keeping them in one place lets the semantic analyzer reject
#: their use as identifiers.
KEYWORDS = frozenset(
    {
        "class",
        "public",
        "private",
        "state",
        "effect",
        "const",
        "void",
        "float",
        "int",
        "bool",
        "foreach",
        "if",
        "else",
        "true",
        "false",
        "this",
        "Extent",
        "new",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    type: TokenType
    text: str
    line: int
    column: int
    value: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, line {self.line})"
