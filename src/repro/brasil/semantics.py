"""Semantic analysis of BRASIL scripts.

The analyzer enforces the restrictions that make BRASIL compilable to a
data-flow plan and parallelizable by BRACE:

* the state-effect pattern — state fields are read-only inside ``run()``
  (the query phase), effect fields are write-only there and read-only in the
  update rules;
* update rules may only reference the agent's own fields (no ``foreach``, no
  access to other agents);
* the only iteration construct is ``foreach`` over an ``Extent``;
* effect assignment targets must be declared effect fields.

It also derives the facts the compiler and the BRACE runtime need: which
fields are spatial (they carry ``#range`` constraints), the visibility and
reachability radii, and whether the script performs non-local effect
assignments (which require the second reduce pass unless effect inversion
removes them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.brasil.ast_nodes import (
    Assign,
    Block,
    Call,
    ClassDecl,
    EffectAssign,
    Expr,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    Name,
    Script,
    walk_expressions,
    walk_statements,
)
from repro.brasil.builtins import BUILTIN_FUNCTIONS
from repro.core.errors import BrasilSemanticError


@dataclass
class ScriptInfo:
    """Facts derived from a single BRASIL class."""

    class_name: str
    state_field_names: list[str] = field(default_factory=list)
    effect_field_names: list[str] = field(default_factory=list)
    spatial_field_names: list[str] = field(default_factory=list)
    effect_combinators: dict[str, str] = field(default_factory=dict)
    visibility_radii: dict[str, float] = field(default_factory=dict)
    reachability_radii: dict[str, float] = field(default_factory=dict)
    has_non_local_effects: bool = False
    non_local_assignment_count: int = 0
    local_assignment_count: int = 0
    uses_rand_in_query: bool = False
    uses_rand_in_update: bool = False
    has_run_method: bool = False

    @property
    def has_bounded_visibility(self) -> bool:
        """True when every spatial field carries a visibility bound."""
        return bool(self.spatial_field_names) and all(
            name in self.visibility_radii for name in self.spatial_field_names
        )

    def min_visibility_radius(self) -> float | None:
        """The smallest per-dimension visibility radius, or None when unbounded."""
        if not self.has_bounded_visibility:
            return None
        return min(self.visibility_radii[name] for name in self.spatial_field_names)


def _local_names(block: Block) -> set[str]:
    """Names bound by local declarations or foreach variables anywhere in ``block``."""
    names: set[str] = set()
    for statement in walk_statements(block):
        if isinstance(statement, LocalDecl):
            names.add(statement.name)
        elif isinstance(statement, ForEach):
            names.add(statement.variable)
    return names


def _expression_uses_rand(expression) -> bool:
    return any(
        isinstance(node, Call) and node.function == "rand"
        for node in walk_expressions(expression)
    )


def analyze_class(declaration: ClassDecl) -> ScriptInfo:
    """Check one class and return the derived :class:`ScriptInfo`.

    Raises :class:`BrasilSemanticError` on any violation.
    """
    info = ScriptInfo(class_name=declaration.name)
    seen: set[str] = set()
    for field_decl in declaration.fields:
        if field_decl.name in seen:
            raise BrasilSemanticError(
                f"field {field_decl.name!r} declared twice in class {declaration.name}"
            )
        seen.add(field_decl.name)
        if field_decl.is_state:
            info.state_field_names.append(field_decl.name)
            if field_decl.is_spatial:
                info.spatial_field_names.append(field_decl.name)
                visibility = field_decl.visibility_radius()
                reachability = field_decl.reachability_radius()
                if visibility is not None:
                    info.visibility_radii[field_decl.name] = visibility
                if reachability is not None:
                    info.reachability_radii[field_decl.name] = reachability
        else:
            if field_decl.combinator is None:
                raise BrasilSemanticError(
                    f"effect field {field_decl.name!r} must declare a combinator "
                    "(e.g. ': sum')"
                )
            info.effect_field_names.append(field_decl.name)
            info.effect_combinators[field_decl.name] = field_decl.combinator
            if field_decl.constraints:
                raise BrasilSemanticError(
                    f"effect field {field_decl.name!r} cannot carry spatial constraints"
                )

    _check_update_rules(declaration, info)
    run_method = declaration.run_method()
    if run_method is not None:
        info.has_run_method = True
        _check_query_script(declaration, run_method.body, info)
    return info


def _check_update_rules(declaration: ClassDecl, info: ScriptInfo) -> None:
    state_names = set(info.state_field_names)
    effect_names = set(info.effect_field_names)
    known = state_names | effect_names
    for field_decl in declaration.state_fields():
        rule = field_decl.update_rule
        if rule is None:
            continue
        for node in walk_expressions(rule):
            if isinstance(node, FieldAccess):
                raise BrasilSemanticError(
                    f"update rule of {field_decl.name!r} accesses another agent "
                    f"({node.field_name!r}); update rules may only read the agent's own fields"
                )
            if isinstance(node, Name):
                if node.identifier == "this":
                    raise BrasilSemanticError(
                        f"update rule of {field_decl.name!r} uses 'this'; field names are "
                        "accessed directly in update rules"
                    )
                if node.identifier not in known:
                    raise BrasilSemanticError(
                        f"update rule of {field_decl.name!r} references unknown name "
                        f"{node.identifier!r}"
                    )
            if isinstance(node, Call):
                if node.function not in BUILTIN_FUNCTIONS and node.function != "rand":
                    raise BrasilSemanticError(
                        f"update rule of {field_decl.name!r} calls unknown function "
                        f"{node.function!r}"
                    )
                if node.function == "rand":
                    info.uses_rand_in_update = True


def _check_query_script(declaration: ClassDecl, body: Block, info: ScriptInfo) -> None:
    state_names = set(info.state_field_names)
    effect_names = set(info.effect_field_names)
    locals_in_body = _local_names(body)

    for statement in walk_statements(body):
        if isinstance(statement, Assign):
            if statement.name in state_names:
                raise BrasilSemanticError(
                    f"state field {statement.name!r} assigned with '=' inside run(); "
                    "state is read-only during the query phase"
                )
            if statement.name in effect_names:
                raise BrasilSemanticError(
                    f"effect field {statement.name!r} assigned with '='; use '<-' so the "
                    "assignment is aggregated"
                )
            if statement.name not in locals_in_body:
                raise BrasilSemanticError(
                    f"assignment to undeclared local variable {statement.name!r}"
                )
        elif isinstance(statement, EffectAssign):
            if statement.field_name not in effect_names:
                raise BrasilSemanticError(
                    f"'<-' target {statement.field_name!r} is not a declared effect field"
                )
            is_non_local = statement.target_agent is not None and not (
                isinstance(statement.target_agent, Name)
                and statement.target_agent.identifier == "this"
            )
            if is_non_local:
                info.has_non_local_effects = True
                info.non_local_assignment_count += 1
            else:
                info.local_assignment_count += 1
        elif isinstance(statement, ForEach):
            pass  # extent type consistency is checked by the parser

    for node in walk_expressions(body):
        if isinstance(node, Name):
            if node.identifier in effect_names and node.identifier not in locals_in_body:
                raise BrasilSemanticError(
                    f"effect field {node.identifier!r} read inside run(); effects are "
                    "write-only during the query phase"
                )
        elif isinstance(node, Call):
            if node.function not in BUILTIN_FUNCTIONS and node.function != "rand":
                raise BrasilSemanticError(f"unknown function {node.function!r} in run()")
            if node.function == "rand":
                info.uses_rand_in_query = True
        elif isinstance(node, FieldAccess):
            if node.field_name in effect_names:
                # Reading another agent's effect field is just as illegal.
                raise BrasilSemanticError(
                    f"effect field {node.field_name!r} of another agent read inside run()"
                )

    # Effect reads disguised as reads of the *same* name used as a '<-' target
    # are already covered above; also forbid reading a name that is neither a
    # local, a state field, a builtin constant nor 'this'.
    valid_names = state_names | locals_in_body | {"this"}
    for node in walk_expressions(body):
        if isinstance(node, Name) and node.identifier not in valid_names:
            if node.identifier in effect_names:
                continue  # already reported above with a clearer message
            raise BrasilSemanticError(
                f"unknown name {node.identifier!r} referenced inside run()"
            )


def analyze(script: Script | ClassDecl) -> ScriptInfo | dict[str, ScriptInfo]:
    """Analyze a class (returning its info) or a script (returning a dict by class name)."""
    if isinstance(script, ClassDecl):
        return analyze_class(script)
    results = {}
    for declaration in script.classes:
        results[declaration.name] = analyze_class(declaration)
    return results
