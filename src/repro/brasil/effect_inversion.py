"""Effect inversion: rewriting non-local effect assignments into local ones.

Non-local effect assignments force BRACE to run two reduce passes per tick
(Section 3.2).  Theorem 2 states that without visibility constraints every
script can be rewritten so that all effect assignments are local; Theorem 3
extends this to distance-bound visibility constraints at the cost of doubling
the bound.

The construction in the paper's proof simulates every other agent and filters
the effects addressed to ``this``; after self-join elimination the common
case collapses to the symmetric rewrite shown in Section 4.2::

    foreach (Fish p : Extent<Fish>) {      foreach (Fish p : Extent<Fish>) {
        p.avoidx <- 1 / abs(x - p.x);  ==>     avoidx <- 1 / abs(p.x - x);
        p.count  <- 1;                          count  <- 1;
    }                                       }

This module implements that simplified inversion directly on the AST: every
non-local assignment whose target is the ``foreach`` variable is replaced by
a local assignment with the roles of ``this`` and the loop variable swapped
(in the value expression and in any enclosing ``if`` conditions).  Scripts
falling outside this pattern — assignments through stored references, values
depending on loop-external locals, or values using ``rand()`` (whose stream
is attached to the executing agent) — are rejected with
:class:`EffectInversionError` so the compiler falls back to the two-pass
plan.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.brasil.ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    Call,
    ClassDecl,
    Conditional,
    EffectAssign,
    Expr,
    ExprStmt,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    MethodDecl,
    Name,
    Stmt,
    UnaryOp,
)
from repro.core.errors import BrasilError


class EffectInversionError(BrasilError):
    """The script's non-local assignments do not fit the invertible pattern."""


@dataclass
class InversionResult:
    """Outcome of :func:`invert_effects`."""

    class_decl: ClassDecl
    inverted: bool
    visibility_doubled: bool
    inverted_assignments: int


def _swap_expression(expression: Expr, loop_variable: str, field_names: set[str],
                     loop_locals: set[str]) -> Expr:
    """Swap the roles of ``this`` and the loop variable inside ``expression``."""
    if isinstance(expression, Name):
        identifier = expression.identifier
        if identifier == "this":
            return Name(loop_variable)
        if identifier == loop_variable:
            return Name("this")
        if identifier in field_names:
            # A bare field of the assigning agent becomes a field of the loop agent.
            return FieldAccess(Name(loop_variable), identifier)
        if identifier in loop_locals:
            # Loop-local values are recomputed per iteration after swapping their
            # initializers, so the reference itself is unchanged.
            return Name(identifier)
        raise EffectInversionError(
            f"cannot invert: value references {identifier!r}, which is neither a field "
            "nor a loop-local variable"
        )
    if isinstance(expression, FieldAccess):
        target = expression.target
        if isinstance(target, Name) and target.identifier == loop_variable:
            # p.field becomes this.field, written as a bare field reference.
            return Name(expression.field_name)
        if isinstance(target, Name) and target.identifier == "this":
            return FieldAccess(Name(loop_variable), expression.field_name)
        raise EffectInversionError(
            "cannot invert: field access through a reference other than 'this' or the "
            "foreach variable"
        )
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.operator,
            _swap_expression(expression.left, loop_variable, field_names, loop_locals),
            _swap_expression(expression.right, loop_variable, field_names, loop_locals),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(
            expression.operator,
            _swap_expression(expression.operand, loop_variable, field_names, loop_locals),
        )
    if isinstance(expression, Call):
        if expression.function == "rand":
            raise EffectInversionError(
                "cannot invert: the assignment value uses rand(), whose stream belongs to "
                "the executing agent"
            )
        return Call(
            expression.function,
            [
                _swap_expression(argument, loop_variable, field_names, loop_locals)
                for argument in expression.arguments
            ],
        )
    if isinstance(expression, Conditional):
        return Conditional(
            _swap_expression(expression.condition, loop_variable, field_names, loop_locals),
            _swap_expression(expression.then_expr, loop_variable, field_names, loop_locals),
            _swap_expression(expression.else_expr, loop_variable, field_names, loop_locals),
        )
    # Literals are symmetric.
    return copy.deepcopy(expression)


def _strip_non_local(statement: Stmt, loop_variable: str | None) -> Stmt | None:
    """Copy ``statement`` with every non-local effect assignment removed (Q1)."""
    if isinstance(statement, EffectAssign):
        if statement.target_agent is None:
            return copy.deepcopy(statement)
        if isinstance(statement.target_agent, Name) and statement.target_agent.identifier == "this":
            return copy.deepcopy(statement)
        return None
    if isinstance(statement, Block):
        kept = [_strip_non_local(child, loop_variable) for child in statement.statements]
        return Block([child for child in kept if child is not None])
    if isinstance(statement, ForEach):
        body = _strip_non_local(statement.body, statement.variable)
        assert isinstance(body, Block)
        if not body.statements:
            return None
        return ForEach(statement.element_type, statement.variable, body)
    if isinstance(statement, If):
        then_block = _strip_non_local(statement.then_block, loop_variable)
        else_block = (
            _strip_non_local(statement.else_block, loop_variable)
            if statement.else_block is not None
            else None
        )
        assert isinstance(then_block, Block)
        if not then_block.statements and (else_block is None or not else_block.statements):
            return None
        return If(copy.deepcopy(statement.condition), then_block, else_block)
    return copy.deepcopy(statement)


def _invert_loop_body(
    body: Block, loop_variable: str, field_names: set[str], loop_locals: set[str]
) -> Block:
    """Build the inverted loop body (Q3 after self-join elimination)."""
    inverted: list[Stmt] = []
    for statement in body.statements:
        if isinstance(statement, EffectAssign):
            if statement.target_agent is None or (
                isinstance(statement.target_agent, Name)
                and statement.target_agent.identifier == "this"
            ):
                continue  # local assignments stay in Q1
            target = statement.target_agent
            if not (isinstance(target, Name) and target.identifier == loop_variable):
                raise EffectInversionError(
                    "cannot invert: non-local assignment does not target the foreach variable"
                )
            inverted.append(
                EffectAssign(
                    target_agent=None,
                    field_name=statement.field_name,
                    value=_swap_expression(statement.value, loop_variable, field_names, loop_locals),
                )
            )
        elif isinstance(statement, LocalDecl):
            inverted.append(
                LocalDecl(
                    type_name=statement.type_name,
                    name=statement.name,
                    initializer=_swap_expression(
                        statement.initializer, loop_variable, field_names, loop_locals
                    ),
                    is_const=statement.is_const,
                )
            )
        elif isinstance(statement, If):
            then_block = _invert_loop_body(
                statement.then_block, loop_variable, field_names, loop_locals
            )
            else_block = (
                _invert_loop_body(statement.else_block, loop_variable, field_names, loop_locals)
                if statement.else_block is not None
                else None
            )
            if then_block.statements or (else_block is not None and else_block.statements):
                inverted.append(
                    If(
                        _swap_expression(
                            statement.condition, loop_variable, field_names, loop_locals
                        ),
                        then_block,
                        else_block,
                    )
                )
        elif isinstance(statement, ForEach):
            raise EffectInversionError("cannot invert: nested foreach loops are not supported")
        elif isinstance(statement, (Assign, ExprStmt, Block)):
            raise EffectInversionError(
                "cannot invert: unsupported statement inside a foreach with non-local effects"
            )
    return Block(inverted)


def _has_non_local_assignment(block: Block) -> bool:
    for statement in block.statements:
        if isinstance(statement, EffectAssign):
            if statement.target_agent is not None and not (
                isinstance(statement.target_agent, Name)
                and statement.target_agent.identifier == "this"
            ):
                return True
        elif isinstance(statement, If):
            if _has_non_local_assignment(statement.then_block):
                return True
            if statement.else_block is not None and _has_non_local_assignment(statement.else_block):
                return True
        elif isinstance(statement, ForEach):
            if _has_non_local_assignment(statement.body):
                return True
        elif isinstance(statement, Block):
            if _has_non_local_assignment(statement):
                return True
    return False


def invert_effects(declaration: ClassDecl) -> InversionResult:
    """Rewrite ``declaration`` so that every effect assignment is local.

    Returns an :class:`InversionResult`; when the script already has only
    local assignments it is returned unchanged with ``inverted=False``.
    Raises :class:`EffectInversionError` when the script does not fit the
    supported pattern.
    """
    run_method = declaration.run_method()
    if run_method is None or not _has_non_local_assignment(run_method.body):
        return InversionResult(
            class_decl=declaration, inverted=False, visibility_doubled=False,
            inverted_assignments=0,
        )

    field_names = {field_decl.name for field_decl in declaration.fields}
    new_statements: list[Stmt] = []
    inverted_assignments = 0

    # Q1: the original script with the non-local assignments removed.
    for statement in run_method.body.statements:
        stripped = _strip_non_local(statement, None)
        if stripped is not None:
            new_statements.append(stripped)

    # Q3 (simplified): one inverted foreach per original foreach that contained
    # non-local assignments.
    for statement in run_method.body.statements:
        if isinstance(statement, ForEach) and _has_non_local_assignment(statement.body):
            loop_locals = {
                child.name for child in statement.body.statements if isinstance(child, LocalDecl)
            }
            inverted_body = _invert_loop_body(
                statement.body, statement.variable, field_names, loop_locals
            )
            inverted_assignments += _count_effect_assigns(inverted_body)
            if inverted_body.statements:
                new_statements.append(
                    ForEach(statement.element_type, statement.variable, inverted_body)
                )
        elif isinstance(statement, EffectAssign) and statement.target_agent is not None:
            # A non-local assignment outside any foreach (through a stored
            # reference) cannot be inverted with the simplified construction.
            if not (
                isinstance(statement.target_agent, Name)
                and statement.target_agent.identifier == "this"
            ):
                raise EffectInversionError(
                    "cannot invert: non-local assignment outside of a foreach loop"
                )

    new_class = copy.deepcopy(declaration)
    for method in new_class.methods:
        if method.name == "run":
            method.body = Block(new_statements)

    # Theorem 3 bounds the visibility needed by the *general* inversion (agent
    # q re-simulates every potential assigner a, which may see up to distance
    # R beyond q) at twice the original distance bound.  The simplified
    # symmetric rewrite applied here only swaps the roles of ``this`` and the
    # foreach variable, so the assigner and the target see each other directly
    # and the original bound suffices — the compiled script keeps it, staying
    # within the 2x envelope the theorem guarantees.
    visibility_doubled = False
    return InversionResult(
        class_decl=new_class,
        inverted=True,
        visibility_doubled=visibility_doubled,
        inverted_assignments=inverted_assignments,
    )


def _count_effect_assigns(block: Block) -> int:
    count = 0
    for statement in block.statements:
        if isinstance(statement, EffectAssign):
            count += 1
        elif isinstance(statement, If):
            count += _count_effect_assigns(statement.then_block)
            if statement.else_block is not None:
                count += _count_effect_assigns(statement.else_block)
        elif isinstance(statement, (Block, ForEach)):
            inner = statement if isinstance(statement, Block) else statement.body
            count += _count_effect_assigns(inner)
    return count
