"""BRASIL — the Big Red Agent SImulation Language.

BRASIL is the paper's agent-centric scripting language.  A script declares a
class per agent kind with ``state`` and ``effect`` fields, a ``run()`` method
(the query phase) and per-state-field update rules, e.g.::

    class Fish {
        public state float x : (x + vx); #range[-1, 1];
        public state float y : (y + vy); #range[-1, 1];
        public state float vx : vx + rand() + avoidx / count * vx;
        public state float vy : vy + rand() + avoidy / count * vy;
        private effect float avoidx : sum;
        private effect float avoidy : sum;
        private effect int count : sum;
        public void run() {
            foreach (Fish p : Extent<Fish>) {
                p.avoidx <- 1 / abs(x - p.x);
                p.avoidy <- 1 / abs(y - p.y);
                p.count <- 1;
            }
        }
    }

The compilation pipeline mirrors the paper's:

1. :mod:`repro.brasil.lexer` / :mod:`repro.brasil.parser` produce an AST;
2. :mod:`repro.brasil.semantics` enforces the state-effect pattern (state is
   read-only in ``run()``, effects are write-only, update rules only touch
   the agent's own fields) and detects non-local effect assignments;
3. :mod:`repro.brasil.effect_inversion` rewrites non-local effect
   assignments into local ones when possible (Theorems 2 and 3);
4. :mod:`repro.brasil.translate` translates the query script into a monad
   algebra plan (Appendix B) on which :mod:`repro.brasil.optimizer` applies
   algebraic rewrites; where the proof obligations hold, both phases also
   compile to whole-phase columnar kernels (:mod:`repro.brasil.kernels`)
   selected by ``BraceConfig.plan_backend``;
5. :mod:`repro.brasil.compiler` packages everything into a Python
   :class:`~repro.core.agent.Agent` subclass executable by the sequential
   engine and by BRACE.
"""

from repro.brasil.compiler import (
    AgentClassSpec,
    BrasilCompiler,
    CompiledScript,
    compile_script,
    compiled_class_for_spec,
)
from repro.brasil.effect_inversion import EffectInversionError, invert_effects
from repro.brasil.kernels import (
    PlanKernelFallback,
    kernels_for_class,
    resolve_plan_backend,
)
from repro.brasil.optimizer import IndexSelection, PlanSelection, select_index, select_plan
from repro.brasil.parser import parse
from repro.brasil.runner import (
    ScriptRunResult,
    build_script_world,
    config_for_script,
    run_script,
)
from repro.brasil.semantics import analyze, ScriptInfo

__all__ = [
    "AgentClassSpec",
    "BrasilCompiler",
    "CompiledScript",
    "EffectInversionError",
    "IndexSelection",
    "PlanKernelFallback",
    "PlanSelection",
    "ScriptInfo",
    "ScriptRunResult",
    "analyze",
    "build_script_world",
    "compile_script",
    "compiled_class_for_spec",
    "config_for_script",
    "invert_effects",
    "kernels_for_class",
    "parse",
    "resolve_plan_backend",
    "run_script",
    "select_index",
    "select_plan",
]
