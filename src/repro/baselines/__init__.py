"""Single-node baselines the paper compares against.

* :mod:`repro.baselines.mitsim` — a hand-coded traffic simulator standing in
  for MITSIM: same driver models, but implemented over per-lane sorted
  arrays with nearest-neighbour lookups instead of the generic agent
  framework (the paper's single-node comparator in Figure 3 and Table 2).
"""

from repro.baselines.mitsim import HandCodedTrafficSimulator

__all__ = ["HandCodedTrafficSimulator"]
