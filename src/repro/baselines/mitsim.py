"""A hand-coded single-node traffic simulator (the MITSIM stand-in).

MITSIM itself is a closed research simulator; what the paper actually
compares against is a hand-optimised single-node implementation of the same
lane-changing and car-following models, with a nearest-neighbour access
structure instead of a generic spatial index.  This module provides that
comparator:

* vehicles are plain records in per-lane arrays kept sorted by position;
* lead/rear vehicles are found by binary search (true nearest neighbour, not
  limited to the fixed 200-unit lookahead the BRACE reimplementation uses —
  the same approximation difference the paper reports as the source of the
  residual RMSPE in Table 2);
* lane average speeds are computed per lane per tick in one pass.

The random decisions use the same per-(seed, tick, vehicle) streams as the
agent implementation, so the two simulators stay statistically very close
and Table 2's comparison is meaningful.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.context import agent_rng
from repro.simulations.traffic.model import TrafficParameters
from repro.simulations.traffic.statistics import TrafficStatisticsCollector


@dataclass
class VehicleRecord:
    """A plain (non-agent) vehicle record."""

    vehicle_id: int
    x: float
    lane: int
    speed: float
    desired_speed: float
    lane_changes: int = 0


class HandCodedTrafficSimulator:
    """Single-node, hand-optimised implementation of the MITSIM-style models."""

    def __init__(self, parameters: TrafficParameters, seed: int = 0):
        self.parameters = parameters
        self.seed = int(seed)
        self.tick = 0
        self.vehicles: list[VehicleRecord] = []
        self.total_seconds = 0.0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def populate(self, num_vehicles: int | None = None) -> None:
        """Seed the segment with the same initial conditions as the agent world."""
        parameters = self.parameters
        rng = np.random.default_rng(self.seed)
        count = num_vehicles if num_vehicles is not None else parameters.vehicles_total()
        self.vehicles = []
        for vehicle_id in range(count):
            desired = float(rng.normal(parameters.desired_speed, parameters.speed_jitter))
            desired = max(parameters.desired_speed * 0.5, desired)
            self.vehicles.append(
                VehicleRecord(
                    vehicle_id=vehicle_id,
                    x=float(rng.uniform(0.0, parameters.segment_length)),
                    lane=int(rng.integers(0, parameters.num_lanes)),
                    speed=float(max(0.0, rng.normal(desired * 0.8, 2.0))),
                    desired_speed=desired,
                )
            )

    def load_from_world(self, world) -> None:
        """Copy the initial vehicle states from an agent world (same ids and values)."""
        self.vehicles = [
            VehicleRecord(
                vehicle_id=agent.agent_id,
                x=agent.x,
                lane=int(agent.lane),
                speed=agent.speed,
                desired_speed=agent.desired_speed,
            )
            for agent in world.agents()
        ]

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    def run_tick(self, collector: TrafficStatisticsCollector | None = None) -> None:
        """Execute one tick over every vehicle."""
        start = time.perf_counter()
        parameters = self.parameters

        # Per-lane arrays sorted by position: the hand-coded nearest-neighbour
        # structure.  Positions and speeds are parallel lists.
        lanes: list[list[VehicleRecord]] = [[] for _ in range(parameters.num_lanes)]
        for vehicle in self.vehicles:
            lanes[vehicle.lane].append(vehicle)
        lane_positions: list[list[float]] = []
        lane_speed_prefix: list[list[float]] = []
        for lane_vehicles in lanes:
            lane_vehicles.sort(key=lambda record: record.x)
            lane_positions.append([record.x for record in lane_vehicles])
            prefix = [0.0]
            for record in lane_vehicles:
                prefix.append(prefix[-1] + record.speed)
            lane_speed_prefix.append(prefix)

        decisions: list[tuple[VehicleRecord, float, int]] = []
        for vehicle in self.vehicles:
            acceleration, new_lane = self._decide(
                vehicle, lanes, lane_positions, lane_speed_prefix
            )
            decisions.append((vehicle, acceleration, new_lane))

        for vehicle, acceleration, new_lane in decisions:
            new_speed = max(0.0, vehicle.speed + acceleration * parameters.time_step)
            new_speed = min(new_speed, parameters.max_speed())
            if new_lane != vehicle.lane:
                vehicle.lane_changes += 1
            vehicle.lane = new_lane
            vehicle.speed = new_speed
            vehicle.x += new_speed * parameters.time_step
            if vehicle.x >= parameters.segment_length:
                vehicle.x -= parameters.segment_length

        self.tick += 1
        self.total_seconds += time.perf_counter() - start
        if collector is not None:
            collector.observe(self.vehicles)

    def run(self, ticks: int, collector: TrafficStatisticsCollector | None = None) -> float:
        """Run ``ticks`` ticks; returns the total wall-clock seconds spent."""
        for _ in range(ticks):
            self.run_tick(collector)
        return self.total_seconds

    # ------------------------------------------------------------------
    # Driver models (same shape as the agent implementation)
    # ------------------------------------------------------------------
    def _neighbours(
        self, vehicle: VehicleRecord, lane: int, lanes, lane_positions
    ) -> tuple[float, float, float]:
        """(lead gap, lead speed, rear gap) in ``lane`` via binary search."""
        positions = lane_positions[lane]
        records = lanes[lane]
        if not positions:
            return math.inf, 0.0, math.inf
        index = bisect.bisect_right(positions, vehicle.x)
        lead_gap, lead_speed = math.inf, 0.0
        probe = index
        while probe < len(records):
            candidate = records[probe]
            if candidate is not vehicle:
                lead_gap = candidate.x - vehicle.x
                lead_speed = candidate.speed
                break
            probe += 1
        rear_gap = math.inf
        probe = index - 1
        while probe >= 0:
            candidate = records[probe]
            if candidate is not vehicle:
                rear_gap = vehicle.x - candidate.x
                break
            probe -= 1
        return lead_gap, lead_speed, rear_gap

    def _acceleration(self, vehicle: VehicleRecord, lead_gap: float, lead_speed: float) -> float:
        parameters = self.parameters
        if math.isinf(lead_gap):
            acceleration = parameters.following_gain * (vehicle.desired_speed - vehicle.speed)
        else:
            desired_gap = parameters.min_gap + vehicle.speed * parameters.desired_headway
            speed_term = parameters.following_gain * (lead_speed - vehicle.speed)
            gap_term = 0.5 * (lead_gap - desired_gap) / max(desired_gap, 1.0)
            acceleration = speed_term + gap_term
            if lead_gap < parameters.min_gap:
                acceleration = -parameters.max_deceleration
        return max(-parameters.max_deceleration, min(parameters.max_acceleration, acceleration))

    def _average_speed_ahead(
        self, vehicle: VehicleRecord, lane: int, lane_positions, lane_speed_prefix
    ) -> float:
        """Average speed of the vehicles ahead within the lookahead window.

        Uses the per-lane prefix sums (a hand-optimised one-pass structure)
        and matches the window the agent implementation observes.
        """
        positions = lane_positions[lane]
        if not positions:
            return self.parameters.desired_speed
        low = bisect.bisect_right(positions, vehicle.x)
        high = bisect.bisect_right(positions, vehicle.x + self.parameters.lookahead)
        count = high - low
        if count <= 0:
            return self.parameters.desired_speed
        prefix = lane_speed_prefix[lane]
        return (prefix[high] - prefix[low]) / count

    def _lane_utility(self, average_speed: float, lead_gap: float, lane: int) -> float:
        parameters = self.parameters
        gap = min(lead_gap, parameters.lookahead)
        utility = (
            parameters.utility_speed_weight * average_speed
            + parameters.utility_gap_weight * gap
        )
        if lane == parameters.num_lanes - 1:
            utility -= parameters.rightmost_lane_penalty
        return utility

    def _decide(self, vehicle, lanes, lane_positions, lane_speed_prefix) -> tuple[float, int]:
        parameters = self.parameters
        lane = vehicle.lane
        lead_gap, lead_speed, _ = self._neighbours(vehicle, lane, lanes, lane_positions)
        acceleration = self._acceleration(vehicle, lead_gap, lead_speed)

        current_average = self._average_speed_ahead(vehicle, lane, lane_positions, lane_speed_prefix)
        current_utility = (
            self._lane_utility(current_average, lead_gap, lane)
            + parameters.keep_lane_bonus
        )
        candidates: list[tuple[int, float, float, float]] = []
        for candidate_lane in (lane - 1, lane + 1):
            if not 0 <= candidate_lane < parameters.num_lanes:
                continue
            candidate_lead_gap, _, candidate_rear_gap = self._neighbours(
                vehicle, candidate_lane, lanes, lane_positions
            )
            candidate_average = self._average_speed_ahead(
                vehicle, candidate_lane, lane_positions, lane_speed_prefix
            )
            utility = self._lane_utility(
                candidate_average, candidate_lead_gap, candidate_lane
            )
            candidates.append((candidate_lane, utility, candidate_lead_gap, candidate_rear_gap))

        best = (lane, current_utility, math.inf, math.inf)
        for candidate in candidates:
            if candidate[1] > best[1]:
                best = candidate
        if best[0] == lane:
            return acceleration, lane

        rng = agent_rng(self.seed ^ 0x5BD1E995, self.tick, vehicle.vehicle_id)
        advantage = best[1] - current_utility
        probability = parameters.change_probability * (
            1.0 - math.exp(-parameters.utility_scale * advantage)
        )
        if rng.random() >= probability:
            return acceleration, lane
        if best[2] < parameters.lead_gap_acceptance or best[3] < parameters.rear_gap_acceptance:
            return acceleration, lane
        return acceleration, best[0]
