"""Spatial self-join algorithms.

Processing one tick of a behavioral simulation is "similar to a spatial
self-join": each agent is joined with every agent inside its visible region.
Two strategies are provided, matching the paper's single-node experiments:

* :func:`nested_loop_self_join` — the un-indexed quadratic scan (the
  "BRACE - no indexing" series of Figures 3 and 4).
* :func:`index_self_join` — an orthogonal range query against a spatial
  index built for the tick (the "BRACE - indexing" series).

Both return, for each probe item, the list of items falling inside its query
box; :func:`neighbor_lists` is a radius-based convenience wrapper used by the
fish and predator models.  The semantic entry points
(:func:`visible_region_self_join`, :func:`neighbor_lists`) report matches in
item order whatever the index, and accept ``backend="vectorized"`` to run on
the columnar kernels of :mod:`repro.spatial.columnar` instead.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.spatial.bbox import BBox
from repro.spatial.columnar import (
    derive_cell_size,
    vectorized_neighbor_lists,
    vectorized_self_join,
)
from repro.spatial.grid import UniformGrid
from repro.spatial.kdtree import KDTree
from repro.spatial.quadtree import QuadTree

IndexFactory = Callable[..., Any]

_INDEX_FACTORIES: dict[str, IndexFactory] = {
    "kdtree": KDTree,
    "grid": UniformGrid,
    "quadtree": QuadTree,
}


def available_indexes() -> list[str]:
    """Names of the spatial index implementations usable by :func:`index_self_join`."""
    return sorted(_INDEX_FACTORIES)


def build_index(
    items: Iterable[Any],
    key: Callable[[Any], Sequence[float]],
    index: str = "kdtree",
    cell_size: float | None = None,
):
    """Build the named spatial index over ``items``.

    ``cell_size`` is only used by the grid index.  Pass an explicit value
    (typically the visibility diameter); when omitted, a size is derived
    from the data extent via
    :func:`~repro.spatial.columnar.derive_cell_size` — the grid never
    silently falls back to 1.0-unit cells, which degraded real workloads
    into near-linear bucket scans.  A non-positive ``cell_size`` raises
    :class:`ValueError` immediately.
    """
    if index not in _INDEX_FACTORIES:
        raise ValueError(f"unknown spatial index {index!r}; choose from {available_indexes()}")
    if index == "grid":
        if cell_size is not None and not cell_size > 0:
            raise ValueError(
                f"grid cell_size must be positive, got {cell_size!r}; pass the "
                "visibility diameter, or None to derive one from the data extent"
            )
        items = list(items)
        if cell_size is None:
            cell_size = derive_cell_size([tuple(map(float, key(item))) for item in items])
        return UniformGrid(items, cell_size, key=key)
    if index == "quadtree":
        return QuadTree(items, key=key)
    return KDTree(items, key=key)


def nested_loop_self_join(
    items: Sequence[Any],
    key: Callable[[Any], Sequence[float]],
    query_box: Callable[[Any], BBox],
) -> dict[int, list[Any]]:
    """Quadratic self-join: test every pair of items.

    Returns a mapping from the index of each probe item in ``items`` to the
    list of items whose point falls inside ``query_box(probe)``.  The probe
    item itself is included when it falls inside its own box, mirroring the
    semantics of a BRASIL ``foreach`` over the full extent.
    """
    points = [tuple(map(float, key(item))) for item in items]
    result: dict[int, list[Any]] = {}
    for probe_index, probe in enumerate(items):
        box = query_box(probe)
        matches = []
        for candidate_index, candidate in enumerate(items):
            if box.contains_point(points[candidate_index]):
                matches.append(candidate)
        result[probe_index] = matches
    return result


def index_self_join(
    items: Sequence[Any],
    key: Callable[[Any], Sequence[float]],
    query_box: Callable[[Any], BBox],
    index: str = "kdtree",
    cell_size: float | None = None,
) -> dict[int, list[Any]]:
    """Index-driven self-join: one range query per probe item.

    Semantically identical to :func:`nested_loop_self_join` (up to the order
    of the matches) but with log-linear instead of quadratic cost for bounded
    visible regions.
    """
    spatial_index = build_index(items, key, index=index, cell_size=cell_size)
    result: dict[int, list[Any]] = {}
    for probe_index, probe in enumerate(items):
        result[probe_index] = spatial_index.range_query(query_box(probe))
    return result


def _item_order(items: Sequence[Any]) -> dict[int, int]:
    """Object id → position in ``items`` (the canonical match order)."""
    return {id(item): position for position, item in enumerate(items)}


def _canonicalize(joined: dict[int, list[Any]], items: Sequence[Any]) -> dict[int, list[Any]]:
    """Sort every probe's matches into item order, in place.

    Index strategies enumerate candidates in index-specific order; sorting
    the matches back into item order makes the join's output — and every
    floating-point accumulation downstream — independent of the access path
    (and bit-identical to the columnar kernels, which emit item order
    natively).
    """
    order = _item_order(items)
    for matches in joined.values():
        if len(matches) > 1:
            matches.sort(key=lambda match: order[id(match)])
    return joined


def visible_region_self_join(
    agents: Sequence[Any],
    index: str | None = "kdtree",
    cell_size: float | None = None,
    backend: str = "python",
) -> dict[int, list[Any]]:
    """Join every agent with the agents inside its *declared* visible region.

    This is the σ_V join of the BRASIL semantics: the query box of each probe
    agent is its ``visible_region()`` (derived from the script's
    ``#range``/``#visibility`` annotations), so the join is driven by the
    declarations rather than an ad-hoc radius.  ``index=None`` selects the
    nested-loop strategy; agents with unbounded visibility match the whole
    extent.  The probe agent itself is excluded from its matches; matches
    come back in agent order regardless of the index.
    ``backend="vectorized"`` delegates to the columnar
    :func:`~repro.spatial.columnar.vectorized_self_join` (same output, one
    batched kernel).
    """
    if backend == "vectorized":
        return vectorized_self_join(agents, cell_size=cell_size)

    # Box covering every agent position, for unbounded-visibility probes;
    # computed at most once per join, not per probe.
    global_box: list[BBox | None] = [None]

    def query_box(agent: Any) -> BBox:
        region = agent.visible_region()
        if region is not None:
            return region
        if global_box[0] is None:
            global_box[0] = BBox.of_points(other.position() for other in agents)
        return global_box[0]

    key = lambda agent: agent.position()
    if index is None:
        joined = nested_loop_self_join(agents, key, query_box)
    else:
        joined = index_self_join(agents, key, query_box, index=index, cell_size=cell_size)
    return _canonicalize(
        {
            probe_index: [match for match in matches if match is not agents[probe_index]]
            for probe_index, matches in joined.items()
        },
        agents,
    )


def neighbor_lists(
    items: Sequence[Any],
    key: Callable[[Any], Sequence[float]],
    radius: float,
    index: str | None = "kdtree",
    include_self: bool = False,
    backend: str = "python",
) -> dict[int, list[Any]]:
    """Radius-based neighbour lists for every item, in item order.

    ``index=None`` selects the nested-loop strategy;
    ``backend="vectorized"`` delegates to the columnar
    :func:`~repro.spatial.columnar.vectorized_neighbor_lists` (same output,
    one batched kernel).  The probe item is excluded from its own neighbour
    list unless ``include_self`` is True.
    """
    if backend == "vectorized":
        return vectorized_neighbor_lists(items, key, radius, include_self=include_self)

    points = [tuple(map(float, key(item))) for item in items]
    # One conversion per item, looked up per candidate pair — the candidate
    # points must not be rebuilt inside the quadratic pruning loop.
    point_of: dict[int, tuple] = {
        id(item): point for item, point in zip(items, points)
    }
    radius_sq = radius * radius

    def prune(probe_index: int, candidates: Iterable[Any]) -> list[Any]:
        center = points[probe_index]
        matches = []
        for candidate in candidates:
            if candidate is items[probe_index] and not include_self:
                continue
            point = point_of[id(candidate)]
            dist_sq = sum((p - c) ** 2 for p, c in zip(point, center))
            if dist_sq <= radius_sq:
                matches.append(candidate)
        return matches

    if index is None:
        joined = nested_loop_self_join(
            items, key, lambda item: BBox.around(point_of[id(item)], radius)
        )
    else:
        joined = index_self_join(
            items,
            key,
            lambda item: BBox.around(point_of[id(item)], radius),
            index=index,
            cell_size=radius if radius > 0 else None,
        )
    return _canonicalize(
        {probe_index: prune(probe_index, matches) for probe_index, matches in joined.items()},
        items,
    )
