"""Axis-aligned bounding boxes in arbitrary dimension.

Bounding boxes describe visible regions, reachable regions, partition owned
regions and range queries against the spatial indexes.  A box is stored as a
tuple of per-dimension ``(low, high)`` intervals and is immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class BBox:
    """An axis-aligned box given by per-dimension closed intervals."""

    intervals: tuple[tuple[float, float], ...]

    def __post_init__(self):
        normalized = tuple((float(lo), float(hi)) for lo, hi in self.intervals)
        for lo, hi in normalized:
            if lo > hi:
                raise ValueError(f"BBox interval has low > high: ({lo}, {hi})")
        object.__setattr__(self, "intervals", normalized)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_bounds(lows: Sequence[float], highs: Sequence[float]) -> "BBox":
        """Build a box from parallel sequences of lower and upper bounds."""
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have the same length")
        return BBox(tuple(zip(map(float, lows), map(float, highs))))

    @staticmethod
    def around(point: Sequence[float], radii: Sequence[float] | float) -> "BBox":
        """Build a box centered at ``point`` extending ``radii`` in each dimension."""
        if isinstance(radii, (int, float)):
            radii = [float(radii)] * len(point)
        if len(radii) != len(point):
            raise ValueError("radii must match the point dimensionality")
        return BBox(tuple((p - r, p + r) for p, r in zip(point, radii)))

    @staticmethod
    def of_points(points: Iterable[Sequence[float]]) -> "BBox":
        """Return the tightest box containing all ``points``."""
        points = list(points)
        if not points:
            raise ValueError("cannot build a BBox from an empty point set")
        dim = len(points[0])
        lows = [min(p[d] for p in points) for d in range(dim)]
        highs = [max(p[d] for p in points) for d in range(dim)]
        return BBox.from_bounds(lows, highs)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.intervals)

    @property
    def lows(self) -> tuple[float, ...]:
        """Per-dimension lower bounds."""
        return tuple(lo for lo, _ in self.intervals)

    @property
    def highs(self) -> tuple[float, ...]:
        """Per-dimension upper bounds."""
        return tuple(hi for _, hi in self.intervals)

    def side(self, dimension: int) -> float:
        """Length of the box along ``dimension``."""
        lo, hi = self.intervals[dimension]
        return hi - lo

    def center(self) -> tuple[float, ...]:
        """Center point of the box."""
        return tuple((lo + hi) / 2.0 for lo, hi in self.intervals)

    def volume(self) -> float:
        """Product of the side lengths."""
        result = 1.0
        for lo, hi in self.intervals:
            result *= hi - lo
        return result

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Return True when ``point`` lies inside the box (closed intervals)."""
        if len(point) != self.dim:
            raise ValueError("point dimensionality does not match the box")
        return all(lo <= p <= hi for p, (lo, hi) in zip(point, self.intervals))

    def contains_box(self, other: "BBox") -> bool:
        """Return True when ``other`` is entirely inside this box."""
        self._check_dim(other)
        return all(
            lo <= olo and ohi <= hi
            for (lo, hi), (olo, ohi) in zip(self.intervals, other.intervals)
        )

    def intersects(self, other: "BBox") -> bool:
        """Return True when the two boxes overlap (closed intervals)."""
        self._check_dim(other)
        return all(
            lo <= ohi and olo <= hi
            for (lo, hi), (olo, ohi) in zip(self.intervals, other.intervals)
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "BBox") -> "BBox | None":
        """Return the overlapping box, or None when the boxes are disjoint."""
        self._check_dim(other)
        intervals = []
        for (lo, hi), (olo, ohi) in zip(self.intervals, other.intervals):
            new_lo = max(lo, olo)
            new_hi = min(hi, ohi)
            if new_lo > new_hi:
                return None
            intervals.append((new_lo, new_hi))
        return BBox(tuple(intervals))

    def union(self, other: "BBox") -> "BBox":
        """Return the tightest box containing both boxes."""
        self._check_dim(other)
        return BBox(
            tuple(
                (min(lo, olo), max(hi, ohi))
                for (lo, hi), (olo, ohi) in zip(self.intervals, other.intervals)
            )
        )

    def expanded(self, margins: Sequence[float] | float) -> "BBox":
        """Return the box grown by ``margins`` on every side."""
        if isinstance(margins, (int, float)):
            margins = [float(margins)] * self.dim
        if len(margins) != self.dim:
            raise ValueError("margins must match the box dimensionality")
        return BBox(
            tuple((lo - m, hi + m) for (lo, hi), m in zip(self.intervals, margins))
        )

    def clamp_point(self, point: Sequence[float]) -> tuple[float, ...]:
        """Return ``point`` clamped to lie within the box."""
        if len(point) != self.dim:
            raise ValueError("point dimensionality does not match the box")
        return tuple(
            min(max(p, lo), hi) for p, (lo, hi) in zip(point, self.intervals)
        )

    def split(self, dimension: int, value: float) -> tuple["BBox", "BBox"]:
        """Split the box at ``value`` along ``dimension`` into (low, high) halves."""
        lo, hi = self.intervals[dimension]
        if not lo <= value <= hi:
            raise ValueError(f"split value {value} outside the interval ({lo}, {hi})")
        left = list(self.intervals)
        right = list(self.intervals)
        left[dimension] = (lo, value)
        right[dimension] = (value, hi)
        return BBox(tuple(left)), BBox(tuple(right))

    def min_distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of the box."""
        if len(point) != self.dim:
            raise ValueError("point dimensionality does not match the box")
        total = 0.0
        for p, (lo, hi) in zip(point, self.intervals):
            if p < lo:
                total += (lo - p) ** 2
            elif p > hi:
                total += (p - hi) ** 2
        return total ** 0.5

    def _check_dim(self, other: "BBox") -> None:
        if self.dim != other.dim:
            raise ValueError(
                f"dimensionality mismatch: {self.dim} vs {other.dim}"
            )
