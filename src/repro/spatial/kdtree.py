"""A semidynamic k-d tree for point data.

The paper's prototype "includes a generic KD-tree based spatial index
capability" (citing Bentley's semidynamic k-d trees) which converts the
query-phase neighbour enumeration from a quadratic scan into an orthogonal
range query.  This module provides that index: it is built in bulk from a set
of points (rebuilt each tick by the engines), supports orthogonal range
queries, radius queries and k-nearest-neighbour queries, and tolerates
duplicate coordinates.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Sequence

from repro.spatial.bbox import BBox


class _Node:
    """Internal k-d tree node."""

    __slots__ = ("point", "item", "axis", "left", "right")

    def __init__(self, point, item, axis):
        self.point = point
        self.item = item
        self.axis = axis
        self.left = None
        self.right = None


class KDTree:
    """A bulk-loaded k-d tree over ``(point, item)`` pairs.

    Parameters
    ----------
    items:
        Iterable of arbitrary objects to index.
    key:
        Function mapping an item to its point (a sequence of floats).  When
        omitted the items themselves are treated as points.
    """

    def __init__(self, items: Iterable[Any], key: Callable[[Any], Sequence[float]] | None = None):
        self._key = key or (lambda item: item)
        entries = [(tuple(map(float, self._key(item))), item) for item in items]
        self._size = len(entries)
        if entries:
            self._dim = len(entries[0][0])
            for point, _ in entries:
                if len(point) != self._dim:
                    raise ValueError("all indexed points must share the same dimensionality")
        else:
            self._dim = 0
        self._root = self._build(entries, depth=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, entries, depth):
        if not entries:
            return None
        axis = depth % self._dim
        entries.sort(key=lambda entry: entry[0][axis])
        median = len(entries) // 2
        # Move the median left while previous entries share the same coordinate,
        # so that the "strictly greater goes right" invariant holds with duplicates.
        while median > 0 and entries[median - 1][0][axis] == entries[median][0][axis]:
            median -= 1
        point, item = entries[median]
        node = _Node(point, item, axis)
        node.left = self._build(entries[:median], depth + 1)
        node.right = self._build(entries[median + 1 :], depth + 1)
        return node

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points (0 when the tree is empty)."""
        return self._dim

    def height(self) -> int:
        """Height of the tree (0 for an empty tree)."""

        def walk(node):
            if node is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def items(self) -> list[Any]:
        """Return every indexed item (pre-order)."""
        result = []

        def walk(node):
            if node is None:
                return
            result.append(node.item)
            walk(node.left)
            walk(node.right)

        walk(self._root)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, box: BBox) -> list[Any]:
        """Return every item whose point lies inside ``box`` (closed)."""
        if self._root is None:
            return []
        if box.dim != self._dim:
            raise ValueError("query box dimensionality does not match the tree")
        result = []
        lows = box.lows
        highs = box.highs

        stack = [self._root]
        while stack:
            node = stack.pop()
            point = node.point
            inside = True
            for d in range(self._dim):
                if not lows[d] <= point[d] <= highs[d]:
                    inside = False
                    break
            if inside:
                result.append(node.item)
            axis = node.axis
            coordinate = point[axis]
            if node.left is not None and lows[axis] <= coordinate:
                stack.append(node.left)
            if node.right is not None and coordinate <= highs[axis]:
                stack.append(node.right)
        return result

    def radius_query(self, center: Sequence[float], radius: float) -> list[Any]:
        """Return every item within Euclidean ``radius`` of ``center``."""
        if self._root is None:
            return []
        center = tuple(map(float, center))
        if len(center) != self._dim:
            raise ValueError("query point dimensionality does not match the tree")
        box = BBox.around(center, radius)
        radius_sq = radius * radius
        result = []
        for item in self.range_query(box):
            point = tuple(map(float, self._key(item)))
            dist_sq = sum((p - c) ** 2 for p, c in zip(point, center))
            if dist_sq <= radius_sq:
                result.append(item)
        return result

    def nearest(self, point: Sequence[float]) -> Any | None:
        """Return the item nearest to ``point`` (None when the tree is empty)."""
        results = self.k_nearest(point, 1)
        return results[0] if results else None

    def k_nearest(self, point: Sequence[float], k: int) -> list[Any]:
        """Return up to ``k`` items nearest to ``point`` in increasing distance."""
        if self._root is None or k <= 0:
            return []
        point = tuple(map(float, point))
        if len(point) != self._dim:
            raise ValueError("query point dimensionality does not match the tree")

        # Max-heap of (-distance_sq, counter, item); counter breaks distance ties.
        heap: list[tuple[float, int, Any]] = []
        counter = 0

        def visit(node):
            nonlocal counter
            if node is None:
                return
            dist_sq = sum((p - c) ** 2 for p, c in zip(node.point, point))
            if len(heap) < k:
                heapq.heappush(heap, (-dist_sq, counter, node.item))
                counter += 1
            elif dist_sq < -heap[0][0]:
                heapq.heapreplace(heap, (-dist_sq, counter, node.item))
                counter += 1
            axis = node.axis
            diff = point[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff <= 0 else (node.right, node.left)
            visit(near)
            if len(heap) < k or diff * diff <= -heap[0][0]:
                visit(far)

        visit(self._root)
        ordered = sorted(heap, key=lambda entry: (-entry[0], entry[1]))
        return [item for _, _, item in ordered]

    def nearest_within(self, point: Sequence[float], radius: float) -> Any | None:
        """Return the nearest item no farther than ``radius``, or None."""
        nearest = self.nearest(point)
        if nearest is None:
            return None
        nearest_point = tuple(map(float, self._key(nearest)))
        dist_sq = sum((p - c) ** 2 for p, c in zip(nearest_point, point))
        if dist_sq <= radius * radius:
            return nearest
        return None
