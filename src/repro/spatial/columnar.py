"""Columnar spatial kernels: NumPy-backed batch joins over position snapshots.

Processing one tick is a spatial self-join (Section 3 of the paper), and the
interpreted join — one Python range query per agent, each converting points
with ``tuple(map(float, ...))`` — is where a pure-Python reproduction loses
orders of magnitude.  This module provides the columnar alternative, in the
spirit of MADlib-style vectorized bulk operators:

* :class:`PointSet` — a per-tick snapshot packing item positions into one
  ``float64`` matrix (built once, reused by every query of the tick);
* :class:`VectorizedGrid` — a uniform grid over a snapshot built with
  ``np.floor`` binning and a single stable ``argsort`` (lexicographic
  bucketing); buckets are contiguous runs of the sort order, located with
  ``np.searchsorted``;
* :func:`batch_range_query` / :func:`batch_neighbor_lists` — answer *all*
  probes of a tick in a handful of array operations instead of one Python
  query per probe;
* :func:`vectorized_self_join` / :func:`vectorized_neighbor_lists` — the
  σ_V join and the radius join, returning the same per-probe match lists as
  :func:`repro.spatial.join.visible_region_self_join` and
  :func:`repro.spatial.join.neighbor_lists`.

Exactness contract
------------------
The kernels never approximate: candidate enumeration may differ from the
interpreted indexes, but the final membership tests use the same float64
operations Python performs (``lo <= p <= hi`` box tests; squared Euclidean
distance accumulated dimension by dimension), so the match *sets* are
bit-identical to the interpreted join.  Matches are reported in ascending
snapshot-row order, which equals the item order of the snapshot — the
canonical order the query contexts also use — so downstream floating-point
accumulations are bit-identical across backends as well.

The one semantic difference: self-exclusion is positional (row ``i`` is not
its own neighbour) rather than by object identity, which only matters when
the very same Python object is indexed at two rows.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

import numpy as np

#: Per-dimension cap on the number of grid cells a probe box may span before
#: the probe is answered by a full columnar scan instead of cell probes.
MAX_SPAN_PER_DIM = 8
#: Cap on the total number of cells a probe may touch (product over dims).
MAX_CELLS_PER_PROBE = 64


def _as_matrix(points: Any) -> np.ndarray:
    """Coerce ``points`` into a ``(n, dim)`` float64 matrix."""
    matrix = np.asarray(points, dtype=np.float64)
    if matrix.size == 0:
        return matrix.reshape(0, matrix.shape[1] if matrix.ndim == 2 else 0)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise ValueError("points must form a 2-D (n, dim) matrix")
    return matrix


def _pairwise_dist_sq(diff: np.ndarray) -> np.ndarray:
    """Squared norms of row vectors, accumulated dimension by dimension.

    The explicit per-dimension accumulation reproduces Python's
    ``sum((p - c) ** 2 for ...)`` left-to-right addition order, keeping the
    distance filter bit-identical to the interpreted join.
    """
    if diff.shape[0] == 0 or diff.shape[1] == 0:
        return np.zeros(diff.shape[0], dtype=np.float64)
    total = diff[:, 0] * diff[:, 0]
    for dimension in range(1, diff.shape[1]):
        total = total + diff[:, dimension] * diff[:, dimension]
    return total


def derive_cell_size(points: np.ndarray, target_per_cell: float = 2.0) -> tuple[float, ...]:
    """A data-derived grid cell size: ~``target_per_cell`` items per cell.

    Splits each dimension of the occupied extent into ``(n / target) ^ (1/d)``
    slots.  Used when a caller asks for a grid without committing to a cell
    size; degenerate extents (a single point, collinear data) fall back to
    unit cells in the flat dimensions.
    """
    matrix = _as_matrix(points)
    count, dim = matrix.shape
    if count == 0 or dim == 0:
        return (1.0,) * max(dim, 1)
    spans = matrix.max(axis=0) - matrix.min(axis=0)
    cells_per_dim = max(1.0, (count / max(target_per_cell, 1e-9)) ** (1.0 / dim))
    sizes = []
    for span in spans:
        size = float(span) / cells_per_dim
        sizes.append(size if size > 0 else 1.0)
    return tuple(sizes)


class PointSet:
    """A columnar snapshot of item positions, packed once per tick.

    Parameters
    ----------
    items:
        The objects being indexed, in the order that defines their rows.
        Row order is the canonical match order: every kernel reports matches
        in ascending row order.
    key:
        Maps an item to its point; identity by default.
    points:
        Optional pre-built ``(n, dim)`` float64 matrix (rows parallel to
        ``items``); when given, ``key`` is not called — this is how a worker
        reuses positions harvested during the distribution phase.
    """

    __slots__ = ("items", "points", "_row_of")

    def __init__(
        self,
        items: Iterable[Any],
        key: Callable[[Any], Sequence[float]] | None = None,
        points: np.ndarray | None = None,
    ):
        self.items = list(items)
        if points is None:
            extract = key or (lambda item: item)
            points = [tuple(map(float, extract(item))) for item in self.items]
        self.points = _as_matrix(points)
        if len(self.points) != len(self.items):
            raise ValueError(
                f"points matrix has {len(self.points)} rows "
                f"for {len(self.items)} items"
            )
        self._row_of: dict[int, int] | None = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def dim(self) -> int:
        """Dimensionality of the packed points (0 when empty)."""
        return int(self.points.shape[1])

    def row_of(self, item: Any) -> int | None:
        """Row of ``item`` (by object identity), or None when not indexed."""
        if self._row_of is None:
            self._row_of = {id(entry): row for row, entry in enumerate(self.items)}
        return self._row_of.get(id(item))

    def take(self, rows: np.ndarray) -> list[Any]:
        """Materialize the items at ``rows`` (ascending rows = canonical order)."""
        items = self.items
        if isinstance(rows, np.ndarray):
            rows = rows.tolist()  # one C-level conversion beats per-element int()
        return [items[row] for row in rows]

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension (min, max) over the packed points."""
        if len(self.items) == 0:
            raise ValueError("an empty PointSet has no bounds")
        return self.points.min(axis=0), self.points.max(axis=0)

    def scan_box(self, lows: Sequence[float], highs: Sequence[float]) -> np.ndarray:
        """Rows inside the closed box — one vectorized scan (no grid)."""
        if len(self.items) == 0:
            return np.zeros(0, dtype=np.intp)
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        mask = (self.points >= lows).all(axis=1) & (self.points <= highs).all(axis=1)
        return np.flatnonzero(mask)

    def scan_radius(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Rows within Euclidean ``radius`` of ``center`` — one scan."""
        if len(self.items) == 0:
            return np.zeros(0, dtype=np.intp)
        center = np.asarray(tuple(map(float, center)), dtype=np.float64)
        dist_sq = _pairwise_dist_sq(self.points - center)
        return np.flatnonzero(dist_sq <= float(radius) * float(radius))


class VectorizedGrid:
    """A uniform grid over a :class:`PointSet`, built with array ops only.

    Binning is ``np.floor(points / cell_size)``; buckets are contiguous runs
    of one stable ``argsort`` over the flattened cell keys (lexicographic
    bucketing), located per query with two ``searchsorted`` calls.  Because
    the sort is stable, every bucket lists its rows in ascending order — the
    canonical match order falls out of the data layout for free.
    """

    def __init__(self, pointset: PointSet, cell_size: float | Sequence[float]):
        self.pointset = pointset
        points = pointset.points
        count, dim = points.shape
        if isinstance(cell_size, (int, float)):
            cell = np.full(max(dim, 1), float(cell_size), dtype=np.float64)
        else:
            cell = np.asarray(tuple(map(float, cell_size)), dtype=np.float64)
            if dim and len(cell) != dim:
                raise ValueError("cell_size must match the point dimensionality")
        if (cell <= 0).any() or not np.isfinite(cell).all():
            raise ValueError(f"grid cell sizes must be positive and finite, got {cell!r}")
        if count == 0 or dim == 0:
            self.cell_size = cell
            self._origin = np.zeros(max(dim, 1), dtype=np.float64)
            self._min_cell = np.zeros(max(dim, 1), dtype=np.int64)
            self._max_cell = self._min_cell
            self._strides = np.ones(max(dim, 1), dtype=np.int64)
            self._order = np.zeros(0, dtype=np.intp)
            self._sorted_keys = np.zeros(0, dtype=np.int64)
            return
        # Bin relative to the data's own origin: cell indices then span only
        # the occupied extent, so coordinates far from zero cannot overflow.
        # A requested cell size far smaller than the extent is clamped so the
        # per-dimension index space stays bounded (the exact filters make
        # oversized cells a performance detail, never a correctness one).
        self._origin = points.min(axis=0)
        span = points.max(axis=0) - self._origin
        max_cells_per_axis = float(2 ** (50 // dim))
        cell = np.maximum(cell, span / max_cells_per_axis)
        self.cell_size = cell
        cells = np.floor((points - self._origin) / cell).astype(np.int64)
        self._min_cell = cells.min(axis=0)
        self._max_cell = cells.max(axis=0)
        spans = self._max_cell - self._min_cell + 1
        strides = np.ones(dim, dtype=np.int64)
        for dimension in range(dim - 2, -1, -1):
            strides[dimension] = strides[dimension + 1] * spans[dimension + 1]
        keys = (cells - self._min_cell) @ strides
        self._strides = strides
        self._order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[self._order]

    # ------------------------------------------------------------------
    # The batched join sweep
    # ------------------------------------------------------------------
    def _batch_join(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        keep: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run every probe box through the grid with an exact ``keep`` filter.

        ``lows``/``highs`` are ``(n_probes, dim)`` closed box bounds (they
        may be infinite; they are clamped to the occupied extent first);
        ``keep(probe_ids, rows)`` returns ``(match_mask, work_mask)`` for a
        chunk of candidate pairs — the exact matches, and the candidates an
        interpreted index would have surfaced for the same probe (its work
        charge).  Returns ``(probe_ids, match_rows, examined)`` with the
        pair arrays sorted by ``(probe, row)`` and ``examined[p]`` counting
        probe ``p``'s work-mask candidates, so per-probe work units are
        comparable across the python and vectorized backends (virtual-time
        figures must not shift when the backend flips mid-sweep).

        The sweep enumerates one cell offset at a time, filtering each
        chunk *before* anything global happens, so memory traffic scales
        with the matches, not the candidates; the final per-probe ordering
        costs one single-key sort of composite ``probe * n + row`` keys.
        Probes whose clamped box spans more than :data:`MAX_SPAN_PER_DIM`
        cells in a dimension (or :data:`MAX_CELLS_PER_PROBE` overall) fall
        back to one exact columnar scan each, so unbounded visible regions
        cannot blow up the cell enumeration.
        """
        points = self.pointset.points
        count, dim = points.shape
        n_probes = len(lows)
        empty = np.zeros(0, dtype=np.int64)
        examined = np.zeros(n_probes, dtype=np.int64)
        if count == 0 or n_probes == 0:
            return empty, empty, examined

        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        # Clamp into (just beyond) the occupied extent so ±inf or far-away
        # boxes bin cleanly; validity is judged on the clamped cells below.
        pad_lo = self._origin + (self._min_cell - 1) * self.cell_size
        pad_hi = self._origin + (self._max_cell + 2) * self.cell_size
        low_cells = np.floor(
            (np.clip(lows, pad_lo, pad_hi) - self._origin) / self.cell_size
        ).astype(np.int64)
        high_cells = np.floor(
            (np.clip(highs, pad_lo, pad_hi) - self._origin) / self.cell_size
        ).astype(np.int64)

        valid = (high_cells >= self._min_cell).all(axis=1)
        valid &= (low_cells <= self._max_cell).all(axis=1)
        low_cells = np.clip(low_cells, self._min_cell, self._max_cell)
        high_cells = np.clip(high_cells, self._min_cell, self._max_cell)
        probe_spans = high_cells - low_cells + 1
        wide = valid & (
            (probe_spans > MAX_SPAN_PER_DIM).any(axis=1)
            | (probe_spans.prod(axis=1) > MAX_CELLS_PER_PROBE)
        )
        narrow = valid & ~wide

        key_chunks: list[np.ndarray] = []

        if narrow.any():
            reach = probe_spans[narrow].max(axis=0)
            offset_span = high_cells - low_cells
            for offset in np.ndindex(*reach):
                offset = np.asarray(offset, dtype=np.int64)
                mask = narrow & (offset <= offset_span).all(axis=1)
                if not mask.any():
                    continue
                keys = (low_cells[mask] + offset - self._min_cell) @ self._strides
                starts = np.searchsorted(self._sorted_keys, keys, side="left")
                ends = np.searchsorted(self._sorted_keys, keys, side="right")
                counts = ends - starts
                total = int(counts.sum())
                if total == 0:
                    continue
                probes = np.flatnonzero(mask)
                cumulative = np.cumsum(counts) - counts
                positions = np.arange(total, dtype=np.int64)
                positions += np.repeat(starts - cumulative, counts)
                rows = self._order[positions]
                probe_ids = np.repeat(probes, counts)
                matched, worked = keep(probe_ids, rows)
                examined += np.bincount(probe_ids[worked], minlength=n_probes)
                key_chunks.append((probe_ids[matched] * count + rows[matched]))

        for probe in np.flatnonzero(wide):
            rows = self.pointset.scan_box(lows[probe], highs[probe])
            probe_ids = np.full(len(rows), probe, dtype=np.int64)
            matched, worked = keep(probe_ids, rows)
            examined[probe] += int(np.count_nonzero(worked))
            # Scan rows are already ascending: the composite keys are sorted.
            key_chunks.append(probe_ids[matched] * count + rows[matched])

        if not key_chunks:
            return empty, empty, examined
        keys = np.concatenate(key_chunks)
        # (probe, row) pairs are unique across cell offsets, so one unstable
        # single-key sort recovers the canonical (probe, row) order.
        keys.sort()
        probe_ids = keys // count
        match_rows = keys - probe_ids * count
        return probe_ids, match_rows, examined

    # ------------------------------------------------------------------
    # Exact batch joins
    # ------------------------------------------------------------------
    def batch_range_query(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact closed-box matches for every probe box, in one sweep.

        Returns ``(probe_ids, match_rows, examined)`` with the pair arrays
        sorted by ``(probe, row)``.
        """
        points = self.pointset.points
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)

        def keep(probe_ids: np.ndarray, rows: np.ndarray):
            candidate_points = points[rows]
            inside = (candidate_points >= lows[probe_ids]).all(axis=1)
            inside &= (candidate_points <= highs[probe_ids]).all(axis=1)
            return inside, inside

        return self._batch_join(lows, highs, keep)

    def batch_radius_query(
        self, centers: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact Euclidean-ball matches around every center, in one sweep.

        Matches satisfy the closed box ``center ± radius`` *and* the squared
        Euclidean distance test, exactly like the interpreted path (a box
        range query pruned by distance).  The box test is not redundant: for
        subnormal-scale offsets the squared distance underflows to zero
        while the box still excludes the point.
        """
        points = self.pointset.points
        centers = np.asarray(centers, dtype=np.float64)
        radius = float(radius)
        radius_sq = radius * radius
        lows = centers - radius
        highs = centers + radius

        def keep(probe_ids: np.ndarray, rows: np.ndarray):
            candidate_points = points[rows]
            inside = (candidate_points >= lows[probe_ids]).all(axis=1)
            inside &= (candidate_points <= highs[probe_ids]).all(axis=1)
            dist_sq = _pairwise_dist_sq(candidate_points - centers[probe_ids])
            # Work charge = the box candidates an interpreted index surfaces;
            # matches additionally pass the distance test.
            return inside & (dist_sq <= radius_sq), inside

        return self._batch_join(lows, highs, keep)


def _split_rows(probe_ids: np.ndarray, rows: np.ndarray, n_probes: int) -> list[np.ndarray]:
    """Split ``(probe, row)`` pairs (sorted by probe) into per-probe arrays."""
    cuts = np.searchsorted(probe_ids, np.arange(1, n_probes))
    return np.split(rows, cuts)


def batch_range_query(
    pointset: PointSet,
    lows: np.ndarray,
    highs: np.ndarray,
    cell_size: float | Sequence[float] | None = None,
    grid: VectorizedGrid | None = None,
) -> list[np.ndarray]:
    """Per-probe row arrays for a batch of closed-box range queries.

    ``grid`` reuses a prebuilt :class:`VectorizedGrid` (the per-tick index
    reuse path); otherwise one is built with ``cell_size`` (data-derived via
    :func:`derive_cell_size` when omitted).
    """
    if len(pointset) == 0:
        return [np.zeros(0, dtype=np.intp) for _ in range(len(lows))]
    if grid is None:
        if cell_size is None:
            cell_size = derive_cell_size(pointset.points)
        grid = VectorizedGrid(pointset, cell_size)
    probe_ids, rows, _ = grid.batch_range_query(lows, highs)
    return _split_rows(probe_ids, rows, len(lows))


def batch_neighbor_lists(
    pointset: PointSet,
    radius: float,
    include_self: bool = False,
    grid: VectorizedGrid | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Radius-based neighbour rows for *every* row of the snapshot at once.

    The self-join kernel: every point is both probe and candidate.  Returns
    ``(lists, examined)`` — ``lists[i]`` holds the neighbour rows of row
    ``i`` in ascending order and ``examined[i]`` the number of candidates
    enumerated for it.  ``include_self=False`` drops the positional self
    match.
    """
    count = len(pointset)
    if count == 0:
        return [], np.zeros(0, dtype=np.int64)
    radius = float(radius)
    if grid is None:
        grid = VectorizedGrid(pointset, radius if radius > 0 else 1.0)
    probe_ids, rows, examined = grid.batch_radius_query(pointset.points, radius)
    if not include_self:
        keep = probe_ids != rows
        probe_ids, rows = probe_ids[keep], rows[keep]
    return _split_rows(probe_ids, rows, count), examined


def vectorized_neighbor_lists(
    items: Sequence[Any],
    key: Callable[[Any], Sequence[float]],
    radius: float,
    include_self: bool = False,
) -> dict[int, list[Any]]:
    """Columnar equivalent of :func:`repro.spatial.join.neighbor_lists`.

    Same mapping (probe index → matched items, in item order), produced by
    one batched kernel instead of one Python range query per item.
    """
    pointset = PointSet(items, key=key)
    lists, _ = batch_neighbor_lists(pointset, radius, include_self=include_self)
    return {probe: pointset.take(rows) for probe, rows in enumerate(lists)}


def vectorized_self_join(
    agents: Sequence[Any],
    cell_size: float | Sequence[float] | None = None,
) -> dict[int, list[Any]]:
    """Columnar σ_V join: every agent against its *declared* visible region.

    The batch equivalent of
    :func:`repro.spatial.join.visible_region_self_join`: probes are the
    agents' ``visible_region()`` boxes (unbounded visibility scans the whole
    extent), the probe agent is excluded from its own matches, and matches
    come back in agent order — bit-identical accumulation downstream.
    """
    pointset = PointSet(agents, key=lambda agent: agent.position())
    count = len(pointset)
    if count == 0:
        return {}
    low_bound, high_bound = pointset.bounds()
    lows = np.empty_like(pointset.points)
    highs = np.empty_like(pointset.points)
    bounded_sides: list[np.ndarray] = []
    for row, agent in enumerate(pointset.items):
        region = agent.visible_region()
        if region is None:
            lows[row] = low_bound
            highs[row] = high_bound
        else:
            lows[row] = region.lows
            highs[row] = region.highs
            bounded_sides.append(highs[row] - lows[row])
    if cell_size is None:
        if bounded_sides:
            sides = np.maximum(np.max(bounded_sides, axis=0), 1e-12)
            cell_size = tuple(float(side) for side in sides)
        else:
            cell_size = derive_cell_size(pointset.points)
    grid = VectorizedGrid(pointset, cell_size)
    probe_ids, rows, _ = grid.batch_range_query(lows, highs)
    keep = probe_ids != rows
    lists = _split_rows(probe_ids[keep], rows[keep], count)
    return {probe: pointset.take(matches) for probe, matches in enumerate(lists)}
