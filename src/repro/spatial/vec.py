"""Small fixed-dimension vectors used by agents and spatial indexes.

The simulations in the paper are two- or three-dimensional; these classes are
deliberately tiny, immutable and dependency-free so they can be used as agent
state, as k-d tree keys and as dictionary keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable two-dimensional vector."""

    x: float = 0.0
    y: float = 0.0

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self):
        yield self.x
        yield self.y

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.x
        if index == 1:
            return self.y
        raise IndexError(f"Vec2 index out of range: {index}")

    def __len__(self) -> int:
        return 2

    def dot(self, other: "Vec2") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Return the scalar cross product (z component)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Return the Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Return the squared Euclidean length."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Vec2") -> float:
        """Return the squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def normalized(self) -> "Vec2":
        """Return a unit vector in the same direction (zero stays zero)."""
        length = self.norm()
        if length == 0.0:
            return Vec2(0.0, 0.0)
        return Vec2(self.x / length, self.y / length)

    def angle(self) -> float:
        """Return the angle of the vector in radians in ``[-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def rotated(self, radians: float) -> "Vec2":
        """Return this vector rotated counter-clockwise by ``radians``."""
        cos_a = math.cos(radians)
        sin_a = math.sin(radians)
        return Vec2(self.x * cos_a - self.y * sin_a, self.x * sin_a + self.y * cos_a)

    def clamped(self, max_norm: float) -> "Vec2":
        """Return the vector scaled down so its length does not exceed ``max_norm``."""
        length = self.norm()
        if length <= max_norm or length == 0.0:
            return self
        return self * (max_norm / length)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    @staticmethod
    def from_angle(radians: float, length: float = 1.0) -> "Vec2":
        """Build a vector with the given direction and length."""
        return Vec2(math.cos(radians) * length, math.sin(radians) * length)

    @staticmethod
    def zero() -> "Vec2":
        """Return the zero vector."""
        return Vec2(0.0, 0.0)


@dataclass(frozen=True, slots=True)
class Vec3:
    """An immutable three-dimensional vector."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.x
        if index == 1:
            return self.y
        if index == 2:
            return self.z
        raise IndexError(f"Vec3 index out of range: {index}")

    def __len__(self) -> int:
        return 3

    def dot(self, other: "Vec3") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Return the vector cross product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Return the Euclidean length."""
        return math.sqrt(self.norm_sq())

    def norm_sq(self) -> float:
        """Return the squared Euclidean length."""
        return self.x * self.x + self.y * self.y + self.z * self.z

    def distance_to(self, other: "Vec3") -> float:
        """Return the Euclidean distance to ``other``."""
        return (self - other).norm()

    def normalized(self) -> "Vec3":
        """Return a unit vector in the same direction (zero stays zero)."""
        length = self.norm()
        if length == 0.0:
            return Vec3(0.0, 0.0, 0.0)
        return self / length

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    @staticmethod
    def zero() -> "Vec3":
        """Return the zero vector."""
        return Vec3(0.0, 0.0, 0.0)
