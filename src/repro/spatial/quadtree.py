"""A point-region quadtree for two-dimensional point data.

The quadtree is an alternative to the k-d tree for the query-phase spatial
join; the ablation benchmark ``benchmarks/test_ablation_index_choice.py``
compares the two.  It subdivides a bounding square into four quadrants when a
leaf exceeds its capacity.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.spatial.bbox import BBox


class _QuadNode:
    """Internal quadtree node covering a rectangular region."""

    __slots__ = ("box", "entries", "children", "capacity", "depth")

    def __init__(self, box: BBox, capacity: int, depth: int):
        self.box = box
        self.entries: list[tuple[tuple[float, float], Any]] = []
        self.children: list["_QuadNode"] | None = None
        self.capacity = capacity
        self.depth = depth

    def insert(self, point, item, max_depth):
        if self.children is not None:
            self._child_for(point).insert(point, item, max_depth)
            return
        self.entries.append((point, item))
        if len(self.entries) > self.capacity and self.depth < max_depth:
            self._split(max_depth)

    def _split(self, max_depth):
        (x_lo, x_hi), (y_lo, y_hi) = self.box.intervals
        x_mid = (x_lo + x_hi) / 2.0
        y_mid = (y_lo + y_hi) / 2.0
        boxes = [
            BBox(((x_lo, x_mid), (y_lo, y_mid))),
            BBox(((x_mid, x_hi), (y_lo, y_mid))),
            BBox(((x_lo, x_mid), (y_mid, y_hi))),
            BBox(((x_mid, x_hi), (y_mid, y_hi))),
        ]
        self.children = [_QuadNode(box, self.capacity, self.depth + 1) for box in boxes]
        entries = self.entries
        self.entries = []
        for point, item in entries:
            self._child_for(point).insert(point, item, max_depth)

    def _child_for(self, point):
        (x_lo, x_hi), (y_lo, y_hi) = self.box.intervals
        x_mid = (x_lo + x_hi) / 2.0
        y_mid = (y_lo + y_hi) / 2.0
        index = (1 if point[0] > x_mid else 0) + (2 if point[1] > y_mid else 0)
        return self.children[index]

    def range_query(self, box: BBox, out: list):
        if not self.box.intersects(box):
            return
        if self.children is not None:
            for child in self.children:
                child.range_query(box, out)
            return
        for point, item in self.entries:
            if box.contains_point(point):
                out.append(item)


class QuadTree:
    """A two-dimensional point quadtree bulk-loaded from items.

    Parameters
    ----------
    items:
        Objects to index.
    key:
        Maps an item to its ``(x, y)`` point; identity by default.
    capacity:
        Maximum number of points per leaf before it splits.
    max_depth:
        Depth limit protecting against pathological duplicate-heavy inputs.
    bounds:
        Optional :class:`BBox` covering all points; computed when omitted.
    """

    def __init__(
        self,
        items: Iterable[Any],
        key: Callable[[Any], Sequence[float]] | None = None,
        capacity: int = 8,
        max_depth: int = 16,
        bounds: BBox | None = None,
    ):
        self._key = key or (lambda item: item)
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        entries = [(tuple(map(float, self._key(item)))[:2], item) for item in items]
        self._size = len(entries)
        self._max_depth = max_depth
        if not entries:
            self._root = None
            return
        for point, _ in entries:
            if len(point) != 2:
                raise ValueError("QuadTree only indexes two-dimensional points")
        if bounds is None:
            bounds = BBox.of_points([point for point, _ in entries]).expanded(1e-9)
        self._root = _QuadNode(bounds, capacity, depth=0)
        for point, item in entries:
            if not bounds.contains_point(point):
                raise ValueError(f"point {point} lies outside the quadtree bounds")
            self._root.insert(point, item, max_depth)

    def __len__(self) -> int:
        return self._size

    def range_query(self, box: BBox) -> list[Any]:
        """Return every item whose point lies inside ``box`` (closed)."""
        if self._root is None:
            return []
        out: list[Any] = []
        self._root.range_query(box, out)
        return out

    def radius_query(self, center: Sequence[float], radius: float) -> list[Any]:
        """Return every item within Euclidean ``radius`` of ``center``."""
        if self._root is None:
            return []
        center = tuple(map(float, center))[:2]
        box = BBox.around(center, radius)
        radius_sq = radius * radius
        result = []
        for item in self.range_query(box):
            point = tuple(map(float, self._key(item)))[:2]
            dist_sq = (point[0] - center[0]) ** 2 + (point[1] - center[1]) ** 2
            if dist_sq <= radius_sq:
                result.append(item)
        return result

    def depth(self) -> int:
        """Return the maximum leaf depth of the tree (0 when empty)."""
        if self._root is None:
            return 0

        def walk(node):
            if node.children is None:
                return node.depth
            return max(walk(child) for child in node.children)

        return walk(self._root)
