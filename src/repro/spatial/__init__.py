"""Spatial substrate: vectors, boxes, indexes, partitioning and joins.

Behavioral simulations are abstracted by the paper as *iterated spatial
joins*; this package provides every spatial primitive those joins need:

* :mod:`repro.spatial.vec` — small fixed-dimension vectors.
* :mod:`repro.spatial.bbox` — axis-aligned bounding boxes.
* :mod:`repro.spatial.kdtree` — a semidynamic k-d tree (range, radius, kNN).
* :mod:`repro.spatial.grid` — a uniform grid index.
* :mod:`repro.spatial.quadtree` — a point quadtree.
* :mod:`repro.spatial.partitioning` — rectilinear grid / strip partitioning
  of space onto workers, with owned sets and partition visible regions.
* :mod:`repro.spatial.join` — spatial self-join algorithms used by the
  query phase.
* :mod:`repro.spatial.columnar` — NumPy-backed columnar snapshots and batch
  join kernels (the ``"vectorized"`` spatial backend).
"""

from repro.spatial.vec import Vec2, Vec3
from repro.spatial.bbox import BBox
from repro.spatial.kdtree import KDTree
from repro.spatial.grid import UniformGrid
from repro.spatial.quadtree import QuadTree
from repro.spatial.partitioning import (
    Partition,
    GridPartitioning,
    StripPartitioning,
)
from repro.spatial.join import (
    nested_loop_self_join,
    index_self_join,
    neighbor_lists,
)
from repro.spatial.columnar import (
    PointSet,
    VectorizedGrid,
    batch_neighbor_lists,
    batch_range_query,
    vectorized_neighbor_lists,
    vectorized_self_join,
)

__all__ = [
    "Vec2",
    "Vec3",
    "BBox",
    "KDTree",
    "UniformGrid",
    "QuadTree",
    "Partition",
    "GridPartitioning",
    "StripPartitioning",
    "nested_loop_self_join",
    "index_self_join",
    "neighbor_lists",
    "PointSet",
    "VectorizedGrid",
    "batch_neighbor_lists",
    "batch_range_query",
    "vectorized_neighbor_lists",
    "vectorized_self_join",
]
