"""Spatial partitioning of the simulated space onto workers.

The BRACE map tasks use a *spatial partitioning function* ``P : L -> P`` that
assigns every location to a partition (one per worker / reducer).  Each
partition has an *owned region* (the inverse image of its id) and a *visible
region* (every location visible from some point of the owned region); agents
are replicated to every partition whose visible region contains them.

Two concrete partitionings are provided:

* :class:`GridPartitioning` — a rectilinear grid, the scheme used by the
  BRACE prototype in the paper.
* :class:`StripPartitioning` — one-dimensional strips along a chosen axis,
  the representation manipulated by the paper's one-dimensional load
  balancer (strip boundaries move to even out the number of owned agents).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import PartitioningError
from repro.spatial.bbox import BBox


@dataclass(frozen=True)
class Partition:
    """A single spatial partition: an id plus its owned region."""

    partition_id: int
    owned_region: BBox

    def visible_region(self, visibility: Sequence[float] | float) -> BBox:
        """Return the owned region grown by the per-dimension visibility radii."""
        return self.owned_region.expanded(visibility)


class SpatialPartitioning:
    """Base class for partitioning functions.

    A partitioning exposes the mapping from locations to partition ids, the
    list of partitions, and the replication target computation used by the
    BRACE map task (every partition whose visible region contains a point).
    """

    def partitions(self) -> list[Partition]:
        """Return every partition."""
        raise NotImplementedError

    def partition_of(self, point: Sequence[float]) -> int:
        """Return the id of the partition owning ``point``."""
        raise NotImplementedError

    def partition_of_batch(self, points: np.ndarray) -> np.ndarray:
        """Owners of many points at once (one int64 per row of ``points``).

        The generic implementation loops over :meth:`partition_of`; the
        concrete partitionings override it with a vectorized lookup whose
        results are bit-identical to the scalar path (same comparisons, same
        float operations) — the columnar map phase depends on that.
        """
        return np.array(
            [self.partition_of(point) for point in points], dtype=np.int64
        ).reshape(len(points))

    def num_partitions(self) -> int:
        """Return the number of partitions."""
        return len(self.partitions())

    def partition(self, partition_id: int) -> Partition:
        """Return the partition with the given id."""
        for part in self.partitions():
            if part.partition_id == partition_id:
                return part
        raise PartitioningError(f"unknown partition id {partition_id}")

    def replication_targets(
        self, point: Sequence[float], visibility: Sequence[float] | float
    ) -> list[int]:
        """Return the ids of every partition that must receive a replica.

        A partition needs a replica of an agent at ``point`` exactly when the
        agent falls inside the partition's visible region, i.e. the owned
        region expanded by the visibility radii.

        The expanded regions depend only on the partitioning and the radii,
        not on the point, so they are cached per visibility — this runs once
        per agent per tick and partitionings are replaced (never mutated)
        when boundaries move, which keeps the cache trivially valid.
        """
        cache = self.__dict__.setdefault("_visible_region_cache", {})
        key = tuple(visibility) if isinstance(visibility, (list, tuple)) else visibility
        regions = cache.get(key)
        if regions is None:
            regions = [
                (part.partition_id, part.visible_region(visibility))
                for part in self.partitions()
            ]
            cache[key] = regions
        return [
            partition_id
            for partition_id, region in regions
            if region.contains_point(point)
        ]


class GridPartitioning(SpatialPartitioning):
    """A rectilinear grid partitioning of a bounding box.

    Parameters
    ----------
    bounds:
        The region of space to partition.
    cells_per_dim:
        Number of grid cells along each dimension; the total number of
        partitions is their product.
    """

    def __init__(self, bounds: BBox, cells_per_dim: Sequence[int]):
        if len(cells_per_dim) != bounds.dim:
            raise PartitioningError("cells_per_dim must match the bounds dimensionality")
        if any(int(c) < 1 for c in cells_per_dim):
            raise PartitioningError("every dimension needs at least one cell")
        self._bounds = bounds
        self._cells = tuple(int(c) for c in cells_per_dim)
        self._partitions = self._build_partitions()

    def _build_partitions(self) -> list[Partition]:
        partitions = []
        for pid in range(self._total_cells()):
            coords = self._id_to_coords(pid)
            intervals = []
            for dimension, cell_index in enumerate(coords):
                lo, hi = self._bounds.intervals[dimension]
                width = (hi - lo) / self._cells[dimension]
                intervals.append((lo + cell_index * width, lo + (cell_index + 1) * width))
            partitions.append(Partition(pid, BBox(tuple(intervals))))
        return partitions

    def _total_cells(self) -> int:
        total = 1
        for count in self._cells:
            total *= count
        return total

    def _id_to_coords(self, pid: int) -> tuple[int, ...]:
        coords = []
        for count in reversed(self._cells):
            coords.append(pid % count)
            pid //= count
        return tuple(reversed(coords))

    def _coords_to_id(self, coords: Sequence[int]) -> int:
        pid = 0
        for coordinate, count in zip(coords, self._cells):
            pid = pid * count + coordinate
        return pid

    @property
    def bounds(self) -> BBox:
        """The partitioned region."""
        return self._bounds

    @property
    def cells_per_dim(self) -> tuple[int, ...]:
        """Grid resolution along each dimension."""
        return self._cells

    def partitions(self) -> list[Partition]:
        return list(self._partitions)

    def partition(self, partition_id: int) -> Partition:
        if not 0 <= partition_id < len(self._partitions):
            raise PartitioningError(f"unknown partition id {partition_id}")
        return self._partitions[partition_id]

    def partition_of(self, point: Sequence[float]) -> int:
        coords = []
        for dimension, coordinate in enumerate(point[: self._bounds.dim]):
            lo, hi = self._bounds.intervals[dimension]
            width = (hi - lo) / self._cells[dimension]
            if width == 0:
                index = 0
            else:
                index = int(math.floor((coordinate - lo) / width))
            # Points on or past the boundary are clamped into the grid: the
            # simulated space is conceptually unbounded (fish ocean) but the
            # partitioning must always produce an owner.
            index = min(max(index, 0), self._cells[dimension] - 1)
            coords.append(index)
        return self._coords_to_id(coords)

    def partition_of_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partition_of` (same clamping, same float ops)."""
        points = np.asarray(points, dtype=np.float64)
        ids = np.zeros(len(points), dtype=np.int64)
        for dimension in range(self._bounds.dim):
            lo, hi = self._bounds.intervals[dimension]
            width = (hi - lo) / self._cells[dimension]
            if width == 0:
                index = np.zeros(len(points), dtype=np.int64)
            else:
                index = np.floor((points[:, dimension] - lo) / width).astype(np.int64)
            index = np.clip(index, 0, self._cells[dimension] - 1)
            ids = ids * self._cells[dimension] + index
        return ids


class StripPartitioning(SpatialPartitioning):
    """One-dimensional strips over a chosen axis.

    The strips cover the full bounds in every other dimension.  Strip
    boundaries are explicit so the load balancer can move them: a
    partitioning with ``n`` strips has ``n - 1`` interior boundaries.
    """

    def __init__(self, bounds: BBox, axis: int, boundaries: Sequence[float]):
        if not 0 <= axis < bounds.dim:
            raise PartitioningError(f"axis {axis} out of range for {bounds.dim}-d bounds")
        lo, hi = bounds.intervals[axis]
        boundaries = [float(b) for b in boundaries]
        if any(b1 >= b2 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise PartitioningError("strip boundaries must be strictly increasing")
        if boundaries and (boundaries[0] <= lo or boundaries[-1] >= hi):
            raise PartitioningError("strip boundaries must lie strictly inside the bounds")
        self._bounds = bounds
        self._axis = axis
        self._boundaries = list(boundaries)
        self._partitions = self._build_partitions()

    @staticmethod
    def uniform(bounds: BBox, axis: int, num_strips: int) -> "StripPartitioning":
        """Build a partitioning with ``num_strips`` equal-width strips."""
        if num_strips < 1:
            raise PartitioningError("need at least one strip")
        lo, hi = bounds.intervals[axis]
        width = (hi - lo) / num_strips
        boundaries = [lo + width * i for i in range(1, num_strips)]
        return StripPartitioning(bounds, axis, boundaries)

    def _build_partitions(self) -> list[Partition]:
        lo, hi = self._bounds.intervals[self._axis]
        edges = [lo, *self._boundaries, hi]
        partitions = []
        for pid, (strip_lo, strip_hi) in enumerate(zip(edges, edges[1:])):
            intervals = list(self._bounds.intervals)
            intervals[self._axis] = (strip_lo, strip_hi)
            partitions.append(Partition(pid, BBox(tuple(intervals))))
        return partitions

    @property
    def bounds(self) -> BBox:
        """The partitioned region."""
        return self._bounds

    @property
    def axis(self) -> int:
        """The axis along which the strips are cut."""
        return self._axis

    @property
    def boundaries(self) -> list[float]:
        """Interior strip boundaries (length ``num_partitions() - 1``)."""
        return list(self._boundaries)

    def partitions(self) -> list[Partition]:
        return list(self._partitions)

    def partition(self, partition_id: int) -> Partition:
        if not 0 <= partition_id < len(self._partitions):
            raise PartitioningError(f"unknown partition id {partition_id}")
        return self._partitions[partition_id]

    def partition_of(self, point: Sequence[float]) -> int:
        coordinate = point[self._axis]
        index = bisect.bisect_right(self._boundaries, coordinate)
        return index

    def partition_of_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partition_of`.

        ``np.searchsorted(..., side="right")`` performs exactly the
        comparisons of ``bisect.bisect_right``, so the owners are
        bit-identical to the scalar path.
        """
        points = np.asarray(points, dtype=np.float64)
        boundaries = np.asarray(self._boundaries, dtype=np.float64)
        return np.searchsorted(boundaries, points[:, self._axis], side="right").astype(
            np.int64
        )

    def with_boundaries(self, boundaries: Sequence[float]) -> "StripPartitioning":
        """Return a new partitioning with the same bounds/axis but new boundaries."""
        return StripPartitioning(self._bounds, self._axis, boundaries)
