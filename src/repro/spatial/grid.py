"""A uniform grid spatial index.

The grid index buckets points into regular cells.  It is the cheapest index to
build (a single pass) and works well when visibility radii are comparable to
the cell size — the typical regime in the paper's traffic simulation, where
vehicles only look a fixed distance ahead and behind.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Iterable, Sequence

from repro.spatial.bbox import BBox


class UniformGrid:
    """A uniform grid over ``(point, item)`` pairs.

    Parameters
    ----------
    items:
        Objects to index.
    cell_size:
        Side length of a (hyper)cubic cell, or a per-dimension sequence.
    key:
        Maps an item to its point; identity by default.
    """

    def __init__(
        self,
        items: Iterable[Any],
        cell_size: float | Sequence[float],
        key: Callable[[Any], Sequence[float]] | None = None,
    ):
        self._key = key or (lambda item: item)
        self._cells: dict[tuple[int, ...], list[Any]] = defaultdict(list)
        self._size = 0
        self._dim = 0
        self._cell_size: tuple[float, ...] = ()

        entries = [(tuple(map(float, self._key(item))), item) for item in items]
        if entries:
            self._dim = len(entries[0][0])
            if isinstance(cell_size, (int, float)):
                self._cell_size = (float(cell_size),) * self._dim
            else:
                self._cell_size = tuple(map(float, cell_size))
                if len(self._cell_size) != self._dim:
                    raise ValueError("cell_size must match the point dimensionality")
            if any(size <= 0 for size in self._cell_size):
                raise ValueError("cell sizes must be positive")
            for point, item in entries:
                if len(point) != self._dim:
                    raise ValueError("all indexed points must share the same dimensionality")
                self._cells[self._cell_of(point)].append(item)
                self._size += 1
        else:
            if isinstance(cell_size, (int, float)):
                self._cell_size = (float(cell_size),)
            else:
                self._cell_size = tuple(map(float, cell_size))

    def _cell_of(self, point: Sequence[float]) -> tuple[int, ...]:
        return tuple(
            int(math.floor(coordinate / size))
            for coordinate, size in zip(point, self._cell_size)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points (0 when the grid is empty)."""
        return self._dim

    @property
    def cell_size(self) -> tuple[float, ...]:
        """Per-dimension cell side lengths."""
        return self._cell_size

    def occupied_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def items(self) -> list[Any]:
        """Return every indexed item."""
        result = []
        for bucket in self._cells.values():
            result.extend(bucket)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, box: BBox) -> list[Any]:
        """Return every item whose point lies inside ``box`` (closed)."""
        if self._size == 0:
            return []
        if box.dim != self._dim:
            raise ValueError("query box dimensionality does not match the grid")
        lows = box.lows
        highs = box.highs
        low_cell = self._cell_of(lows)
        high_cell = self._cell_of(highs)

        result = []
        for cell in self._iterate_cells(low_cell, high_cell):
            bucket = self._cells.get(cell)
            if not bucket:
                continue
            for item in bucket:
                point = tuple(map(float, self._key(item)))
                if all(lo <= p <= hi for p, lo, hi in zip(point, lows, highs)):
                    result.append(item)
        return result

    def radius_query(self, center: Sequence[float], radius: float) -> list[Any]:
        """Return every item within Euclidean ``radius`` of ``center``."""
        if self._size == 0:
            return []
        center = tuple(map(float, center))
        box = BBox.around(center, radius)
        radius_sq = radius * radius
        result = []
        for item in self.range_query(box):
            point = tuple(map(float, self._key(item)))
            dist_sq = sum((p - c) ** 2 for p, c in zip(point, center))
            if dist_sq <= radius_sq:
                result.append(item)
        return result

    def _iterate_cells(self, low_cell, high_cell):
        """Yield every integer cell coordinate in the inclusive hyper-rectangle."""

        def recurse(prefix, dimension):
            if dimension == self._dim:
                yield tuple(prefix)
                return
            for index in range(low_cell[dimension], high_cell[dimension] + 1):
                prefix.append(index)
                yield from recurse(prefix, dimension + 1)
                prefix.pop()

        yield from recurse([], 0)
