"""BRASIL compilation pipeline walkthrough.

Shows what the compiler does to the paper's fish script: parsing, semantic
analysis (state-effect pattern enforcement), effect inversion, translation to
a monad algebra plan and algebraic optimization — and then runs the compiled
agent class on the sequential engine.

Run with:  python examples/brasil_compile.py
"""

import numpy as np

from repro import SequentialEngine, World
from repro.brasil import compile_script
from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT
from repro.spatial.bbox import BBox


def main() -> None:
    compiled = compile_script(FISH_SCHOOL_SCRIPT)

    print("class:", compiled.class_name)
    print("state fields: ", compiled.info.state_field_names)
    print("effect fields:", compiled.info.effect_field_names,
          "combinators:", compiled.info.effect_combinators)
    print("spatial fields:", compiled.info.spatial_field_names,
          "visibility radii:", compiled.info.visibility_radii)
    print()
    print("non-local effect assignments in the source:",
          compiled.original_info.non_local_assignment_count)
    print("effect inversion applied:", compiled.was_inverted,
          "-> non-local assignments after compilation:",
          compiled.info.non_local_assignment_count)
    print()
    if compiled.optimized_plan is not None:
        report = compiled.optimized_plan.report
        print("monad algebra plan:",
              f"{compiled.optimized_plan.original_size} operators ->",
              f"{compiled.optimized_plan.optimized_size} after optimization")
        print("  rewrites applied:", report.total,
              f"(identity={report.identity_eliminations},"
              f" map fusion={report.map_fusions},"
              f" singleton={report.singleton_flattenings},"
              f" select fusion={report.selection_fusions},"
              f" dead tuples={report.dead_tuple_eliminations})")
    print()

    # Run the compiled class for a few ticks.
    world = World(bounds=BBox(((-100.0, 100.0), (-100.0, 100.0))), seed=1)
    rng = np.random.default_rng(1)
    for _ in range(200):
        world.add_agent(
            compiled.make_agent(
                x=float(rng.uniform(-50, 50)),
                y=float(rng.uniform(-50, 50)),
                vx=float(rng.uniform(-1, 1)),
                vy=float(rng.uniform(-1, 1)),
            )
        )
    engine = SequentialEngine(world, index="kdtree")
    engine.run(10)
    print(f"ran 10 ticks of the compiled script over {world.agent_count()} fish "
          f"({engine.statistics.throughput():,.0f} agent ticks/s)")


if __name__ == "__main__":
    main()
