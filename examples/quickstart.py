"""Quickstart: write an agent once, run it through the `Simulation` session.

The example defines a tiny flocking agent directly in Python using the
state-effect pattern, runs it sequentially on the single-node reference
engine and then through `repro.Simulation` — the unified front door to the
parallel BRACE runtime — streaming per-tick events, and checks that both
executions produce the same agent states: the core guarantee of the
framework.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Agent,
    EffectField,
    SequentialEngine,
    Simulation,
    StateField,
    SUM,
    COUNT,
    World,
)
from repro.spatial.bbox import BBox


class Boid(Agent):
    """A bird-like agent that steers towards the centre of its neighbours."""

    x = StateField(0.0, spatial=True, visibility=15.0, reachability=3.0)
    y = StateField(0.0, spatial=True, visibility=15.0, reachability=3.0)
    vx = StateField(0.0)
    vy = StateField(0.0)

    pull_x = EffectField(SUM)
    pull_y = EffectField(SUM)
    neighbors = EffectField(COUNT)

    def query(self, ctx):
        """Query phase: accumulate the pull towards every visible neighbour."""
        for other in ctx.neighbors(self, 10.0):
            self.pull_x = other.x - self.x
            self.pull_y = other.y - self.y
            self.neighbors = 1

    def update(self, ctx):
        """Update phase: steer towards the neighbourhood centre and move."""
        if self.neighbors > 0:
            self.vx = 0.9 * self.vx + 0.1 * (self.pull_x / self.neighbors)
            self.vy = 0.9 * self.vy + 0.1 * (self.pull_y / self.neighbors)
        self.x = self.x + self.vx
        self.y = self.y + self.vy


def build_world(seed: int = 42, num_boids: int = 500) -> World:
    """Scatter boids uniformly over a 200x200 box."""
    world = World(bounds=BBox(((0.0, 200.0), (0.0, 200.0))), seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(num_boids):
        world.add_agent(
            Boid(
                x=float(rng.uniform(0, 200)),
                y=float(rng.uniform(0, 200)),
                vx=float(rng.uniform(-1, 1)),
                vy=float(rng.uniform(-1, 1)),
            )
        )
    return world


def main() -> None:
    ticks = 20

    sequential_world = build_world()
    sequential = SequentialEngine(sequential_world, index="kdtree")
    sequential.run(ticks)
    print(f"sequential: {ticks} ticks, "
          f"{sequential.statistics.throughput():,.0f} agent ticks/s (wall clock)")

    # The same model through the unified session API: four BRACE workers,
    # streamed tick by tick so we can watch epoch boundaries go by.
    session = (
        Simulation.from_agents(build_world())
        .with_workers(4)
        .with_epochs(5)
        .with_index("kdtree")
    )
    with session as sim:
        for event in sim.stream(ticks):
            if event.is_epoch_boundary:
                print(f"  epoch closed at tick {event.tick}"
                      f" (rebalanced: {event.rebalanced})")
        result = sim.result()

    print(f"BRACE (4 workers): {result.throughput():,.0f} agent ticks/s (virtual time), "
          f"{result.bytes_over_network():,} bytes over the network")
    print(result.provenance.describe())

    identical = sequential_world.same_state_as(sim.world, tolerance=1e-9)
    print(f"sequential and BRACE agent states identical: {identical}")


if __name__ == "__main__":
    main()
