"""Predator example: non-local effects and effect inversion.

The predator simulation programs biting as a non-local effect assignment,
which forces BRACE to run a second reduce pass every tick.  This example
compiles the BRASIL predator script, lets the compiler invert the non-local
assignments automatically, and compares the two formulations on the BRACE
runtime — a miniature of the paper's Figure 5 experiment.

Run with:  python examples/predator_inversion.py
"""

from repro import Simulation
from repro.brasil import compile_script
from repro.simulations.predator import (
    PREDATOR_NON_LOCAL_SCRIPT,
    PredatorParameters,
    build_predator_world,
)


def run_configuration(label: str, non_local: bool, ticks: int = 10) -> float:
    """Run the hand-written predator model in one of the two formulations."""
    world = build_predator_world(800, PredatorParameters(), seed=11, non_local=non_local)
    session = (
        Simulation.from_agents(world)
        .with_workers(16)
        .with_epochs(ticks)
        .with_non_local_effects(non_local)
        .with_index("kdtree", check_visibility=False)
        .with_load_balancing(False)
    )
    with session as sim:
        result = sim.run(ticks)
    throughput = result.throughput()
    print(f"{label:35s} {throughput:12,.0f} agent ticks/s"
          f"   ({result.bytes_over_network():,} bytes over network)")
    return throughput


def main() -> None:
    # 1. The BRASIL compiler inverts the non-local script automatically.
    compiled = compile_script(PREDATOR_NON_LOCAL_SCRIPT)
    print("BRASIL predator script:")
    print(f"  non-local assignments in the source: "
          f"{compiled.original_info.non_local_assignment_count}")
    print(f"  effect inversion applied:            {compiled.was_inverted}")
    print(f"  reduce passes needed after compiling: "
          f"{2 if compiled.has_non_local_effects else 1}")
    print()

    # 2. Throughput comparison of the two formulations (hand-written model).
    print("BRACE runtime, 16 workers:")
    non_local = run_configuration("non-local effects (2 reduce passes)", non_local=True)
    local = run_configuration("effect-inverted  (1 reduce pass)", non_local=False)
    print(f"\nimprovement from effect inversion: {local / non_local - 1.0:+.1%}")


if __name__ == "__main__":
    main()
