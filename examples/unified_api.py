"""One front door: the same model through both `Simulation` entry points.

The ring-road car model exists twice in this repo — hand-written against the
agent framework (`repro.simulations.traffic.RingCar`) and as BRASIL source
(`TRAFFIC_SCRIPT`).  This example runs both formulations through the *same*
`Simulation` session API, on both the serial and the process executor
backends, and asserts that all four runs end in bit-identical agent states —
the paper's "write the model once, the system owns parallelization" promise,
end to end.  It also shows what a populated `RunResult` carries: statistics,
measured IPC bytes and full provenance (model, config, seed, backend,
script hash).

Run with:  python examples/unified_api.py
"""

from repro.api import Simulation
from repro.simulations.traffic import RING_LENGTH, build_ring_world
from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT

TICKS = 12
NUM_CARS = 60
SEED = 9


def from_agents(executor: str) -> Simulation:
    """Session over hand-written Python agents."""
    return (
        Simulation.from_agents(build_ring_world(NUM_CARS, SEED))
        .with_executor(executor, max_workers=4)
        .with_workers(4)
        .with_index("kdtree")
    )


def from_script(executor: str) -> Simulation:
    """Session compiled from BRASIL source — same model, same session API."""
    return (
        Simulation.from_script(
            TRAFFIC_SCRIPT, num_agents=NUM_CARS, seed=SEED, bounds=((0.0, RING_LENGTH),)
        )
        .with_executor(executor, max_workers=4)
        .with_workers(4)
        .with_index("kdtree")
    )


def main() -> None:
    results = {}
    for label, make_session in (("agents", from_agents), ("script", from_script)):
        for executor in ("serial", "process"):
            with make_session(executor) as sim:
                result = sim.run(TICKS)
            results[(label, executor)] = result
            print(f"{label:>6} on {executor:>7}: {result.summary()}")
            print()

    reference = results[("agents", "serial")]
    for key, result in results.items():
        assert result.same_states_as(reference), f"{key} diverged from agents/serial"
        assert result.ticks == TICKS and result.num_agents == NUM_CARS
        assert result.metrics.ticks, "per-tick statistics must be populated"
        assert result.provenance.backend == key[1]
    # Script provenance carries the source hash; agent provenance does not.
    assert results[("script", "serial")].provenance.script_hash is not None
    assert reference.provenance.script_hash is None
    # The process runs actually crossed a process boundary: measured IPC > 0.
    assert results[("agents", "process")].ipc_bytes > 0
    assert results[("script", "process")].ipc_bytes > 0

    print("all four runs produced bit-identical final agent states")


if __name__ == "__main__":
    main()
