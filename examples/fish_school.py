"""Fish school example: information transfer and load balancing.

A school of fish with two groups of informed individuals is simulated on the
BRACE runtime.  The example prints how the school splits over time (the
scenario behind Figures 7 and 8) and how the load balancer keeps the workers'
owned sets even.

Run with:  python examples/fish_school.py
"""

from repro.brace import BraceConfig, BraceRuntime
from repro.simulations.fish import (
    CouzinParameters,
    build_fish_world,
    group_centroid,
    make_fish_class,
    school_polarization,
    school_spread,
)


def main() -> None:
    parameters = CouzinParameters(informed_fraction=0.2, omega=0.7, seed_region=80.0)
    fish_class = make_fish_class(parameters)
    world = build_fish_world(1000, parameters, seed=3, fish_class=fish_class)

    config = BraceConfig(
        num_workers=8,
        ticks_per_epoch=5,
        load_balance=True,
        load_balance_threshold=1.1,
        check_visibility=False,
    )
    runtime = BraceRuntime(world, config)

    print(f"{world.agent_count()} fish on {config.num_workers} workers")
    print("tick  polarization  spread  centroid            owned agents per worker")
    for step in range(6):
        runtime.run(5)
        agents = world.agents()
        centroid = group_centroid(agents)
        print(f"{world.tick:4d}  {school_polarization(agents):12.3f}"
              f"  {school_spread(agents):6.1f}"
              f"  ({centroid[0]:7.1f}, {centroid[1]:7.1f})"
              f"  {runtime.owned_counts()}")

    print()
    print(f"throughput: {runtime.throughput():,.0f} agent ticks/s (virtual)")
    print(f"rebalances performed: {runtime.master.rebalances_performed()}")


if __name__ == "__main__":
    main()
