"""Fish school example: information transfer and load balancing, observed live.

A school of fish with two groups of informed individuals is simulated
through the unified `Simulation` API.  Epoch observers watch the load
balancer react as the school splits (the scenario behind Figures 7 and 8),
and a per-tick stream prints how the school's polarization and spread
evolve without ever touching the runtime directly.

Run with:  python examples/fish_school.py
"""

from repro import Simulation
from repro.simulations.fish import (
    CouzinParameters,
    build_fish_world,
    group_centroid,
    make_fish_class,
    school_polarization,
    school_spread,
)


def main() -> None:
    parameters = CouzinParameters(informed_fraction=0.2, omega=0.7, seed_region=80.0)
    fish_class = make_fish_class(parameters)
    world = build_fish_world(1000, parameters, seed=3, fish_class=fish_class)

    session = (
        Simulation.from_agents(world)
        .with_workers(8)
        .with_epochs(5)
        .with_load_balancing(threshold=1.1)
        .with_index("kdtree", check_visibility=False)
    )
    session.on_epoch(
        lambda epoch: epoch.rebalanced
        and print(f"      epoch {epoch.epoch}: rebalanced "
                  f"({epoch.agents_migrated_by_balancer} fish moved)")
    )

    print(f"{world.agent_count()} fish on 8 workers")
    print("tick  polarization  spread  centroid")
    with session as sim:
        for event in sim.stream(30):
            if (event.tick + 1) % 5 == 0:
                agents = world.agents()
                centroid = group_centroid(agents)
                print(f"{world.tick:4d}  {school_polarization(agents):12.3f}"
                      f"  {school_spread(agents):6.1f}"
                      f"  ({centroid[0]:7.1f}, {centroid[1]:7.1f})")
        result = sim.result()

    print()
    print(f"throughput: {result.throughput():,.0f} agent ticks/s (virtual)")
    print(f"epochs with a rebalance: "
          f"{sum(1 for epoch in result.metrics.epochs if epoch.rebalanced)}")


if __name__ == "__main__":
    main()
