"""BRASIL-to-parallel-execution walkthrough.

The paper's end-to-end promise: write the simulation in BRASIL once, and the
system owns parallelization.  This example compiles the fish-school script,
shows what the compiler decided (effect inversion, reduce passes, spatial
index), then runs the *same* script on the serial, thread and process
executor backends and checks the final agent states are bit-identical.

Run with:  python examples/brasil_parallel.py
"""

from repro import Simulation
from repro.brasil import compile_script
from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

TICKS = 5
NUM_FISH = 150
SEED = 7


def main() -> None:
    compiled = compile_script(FISH_SCHOOL_SCRIPT)
    print("class:", compiled.class_name)
    print("effect inversion applied:", compiled.was_inverted,
          "-> reduce passes per tick:", 2 if compiled.has_non_local_effects else 1)
    selection = compiled.index_selection
    print(f"access path: index={selection.index!r} cell_size={selection.cell_size}")
    print("  reason:", selection.reason)
    print()

    results = {}
    for executor in ("serial", "thread", "process"):
        session = (
            Simulation.from_script(FISH_SCHOOL_SCRIPT, num_agents=NUM_FISH, seed=SEED)
            .with_workers(4)
            .with_executor(executor, max_workers=4)
        )
        with session as sim:
            run = sim.run(TICKS)
        results[executor] = run
        wall = sum(tick.wall_seconds for tick in run.metrics.ticks)
        print(f"{executor:>8}: {NUM_FISH} fish x {TICKS} ticks in {wall:.3f}s wall "
              f"({run.throughput():,.0f} agent ticks per virtual second, "
              f"{run.ipc_bytes:,} measured IPC bytes)")

    serial_states = results["serial"].final_states
    for executor in ("thread", "process"):
        identical = results[executor].final_states == serial_states
        print(f"{executor} states bit-identical to serial: {identical}")
        assert identical, f"{executor} diverged from serial"


if __name__ == "__main__":
    main()
