"""Traffic example: a multi-lane highway with MITSIM-style drivers.

Runs the traffic simulation on the agent framework, collects per-lane
statistics, and validates them against the hand-coded baseline simulator —
a miniature version of the paper's Table 2 experiment.

Run with:  python examples/traffic_highway.py
"""

from repro.baselines.mitsim import HandCodedTrafficSimulator
from repro.core.engine import SequentialEngine
from repro.simulations.traffic import (
    TrafficParameters,
    TrafficStatisticsCollector,
    build_traffic_world,
    compare_lane_statistics,
)


def main() -> None:
    parameters = TrafficParameters(segment_length=3000.0, num_lanes=4)
    ticks = 50

    # Agent-framework run (this is what BRACE distributes across workers).
    world = build_traffic_world(parameters, seed=7)
    agent_stats = TrafficStatisticsCollector(parameters)
    engine = SequentialEngine(
        world, index="kdtree", on_tick_end=lambda w, _s: agent_stats.observe(w.agents())
    )
    engine.run(ticks)

    # Hand-coded baseline from the same initial conditions.
    baseline = HandCodedTrafficSimulator(parameters, seed=7)
    baseline.load_from_world(build_traffic_world(parameters, seed=7))
    baseline_stats = TrafficStatisticsCollector(parameters)
    baseline.run(ticks, baseline_stats)

    print(f"{world.agent_count()} vehicles, {ticks} ticks")
    print(f"agent framework: {engine.statistics.total_seconds:.2f}s, "
          f"baseline: {baseline.total_seconds:.2f}s")
    print()
    print("lane  avg speed (agents)  avg speed (baseline)  changes/vehicle-tick")
    for lane, metrics in agent_stats.summary().items():
        baseline_metrics = baseline_stats.summary()[lane]
        print(f"  {lane + 1}   {metrics['average_velocity']:19.2f}"
              f"  {baseline_metrics['average_velocity']:20.2f}"
              f"  {metrics['change_frequency']:20.4f}")

    print()
    print("RMSPE vs baseline (Table 2 style):")
    for lane, metrics in compare_lane_statistics(baseline_stats, agent_stats).items():
        print(f"  lane {lane + 1}: "
              f"change freq {metrics['change_frequency'] * 100:6.2f}%  "
              f"density {metrics['average_density'] * 100:6.2f}%  "
              f"velocity {metrics['average_velocity'] * 100:6.3f}%")


if __name__ == "__main__":
    main()
